#include "socet/obs/sampler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "socet/util/table.hpp"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace socet::obs {

#if defined(__linux__)

namespace {

constexpr int kMaxFrames = 48;
// backtrace() called inside the handler sees: the handler itself, the
// libc signal trampoline (__restore_rt), then the interrupted thread's
// real frames.  Frame 0 varies (sometimes backtrace's own helper), so
// symbolization re-trims anything that still lands in this file.
constexpr int kSkipFrames = 2;

struct RawSample {
  void* frames[kMaxFrames];
  int depth;
  std::uint32_t tid;
};

// All handler-visible state is plain atomics over preallocated storage:
// the SIGPROF handler claims a slot with one fetch_add and writes into
// memory no one else touches until the sampler is stopped.
std::vector<RawSample> g_samples;
std::atomic<std::size_t> g_next{0};
std::atomic<std::size_t> g_dropped{0};
std::atomic<bool> g_running{false};

struct sigaction g_previous_action;
SamplerOptions g_options;

void sigprof_handler(int, siginfo_t*, void*) {
  if (!g_running.load(std::memory_order_relaxed)) return;
  const std::size_t slot = g_next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= g_samples.size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSample& sample = g_samples[slot];
  sample.depth = ::backtrace(sample.frames, kMaxFrames);
  sample.tid =
      static_cast<std::uint32_t>(::syscall(SYS_gettid));
}

std::size_t captured() {
  return std::min(g_next.load(std::memory_order_relaxed), g_samples.size());
}

/// Best-effort name for one return address: demangled symbol, else
/// `module+0xoff`, else the raw address.
std::string symbolize(void* addr) {
  Dl_info info{};
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      // Fold templated/overloaded detail out of the label: keep
      // everything up to the argument list.
      const std::size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
      return name;
    }
    return info.dli_sname;
  }
  if (::dladdr(addr, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = info.dli_fname;
    for (const char* p = base; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "+0x%zx",
                  reinterpret_cast<std::size_t>(addr) -
                      reinterpret_cast<std::size_t>(info.dli_fbase));
    return std::string(base) + buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<std::size_t>(addr));
  return buf;
}

/// Symbolize every captured sample into outermost-first frame lists,
/// caching per-address so hot stacks resolve once.
std::vector<std::vector<std::string>> symbolized_stacks() {
  std::map<void*, std::string> cache;
  const auto name_of = [&cache](void* addr) -> const std::string& {
    auto it = cache.find(addr);
    if (it == cache.end()) it = cache.emplace(addr, symbolize(addr)).first;
    return it->second;
  };

  std::vector<std::vector<std::string>> stacks;
  const std::size_t n = captured();
  stacks.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const RawSample& sample = g_samples[s];
    std::vector<std::string> frames;
    // Walk innermost -> outermost, skipping the handler prologue, then
    // reverse so folded output reads root-first.
    for (int f = kSkipFrames; f < sample.depth; ++f) {
      std::string name = name_of(sample.frames[f]);
      // Residual handler/trampoline frames (signal delivery details
      // differ across libc builds) add noise, not information.
      if (name.find("sigprof_handler") != std::string::npos ||
          name.find("__restore_rt") != std::string::npos ||
          name == "backtrace") {
        continue;
      }
      frames.push_back(std::move(name));
    }
    if (frames.empty()) continue;
    std::reverse(frames.begin(), frames.end());
    stacks.push_back(std::move(frames));
  }
  return stacks;
}

}  // namespace

bool sampler_supported() { return true; }

bool Sampler::start(const SamplerOptions& options) {
  if (g_running.load(std::memory_order_relaxed)) return false;
  g_options = options;
  if (g_samples.size() < options.max_samples) {
    g_samples.resize(options.max_samples);
  }

  // backtrace() may lazily dlopen libgcc on first use, which is not
  // async-signal-safe — take that hit here, outside the handler.
  void* warmup[4];
  ::backtrace(warmup, 4);

  struct sigaction action{};
  action.sa_sigaction = &sigprof_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &g_previous_action) != 0) return false;

  g_running.store(true, std::memory_order_relaxed);

  itimerval timer{};
  timer.it_interval.tv_sec = options.interval_us / 1000000;
  timer.it_interval.tv_usec = options.interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_running.store(false, std::memory_order_relaxed);
    ::sigaction(SIGPROF, &g_previous_action, nullptr);
    return false;
  }
  return true;
}

void Sampler::stop() {
  if (!g_running.load(std::memory_order_relaxed)) return;
  itimerval disarm{};
  ::setitimer(ITIMER_PROF, &disarm, nullptr);
  g_running.store(false, std::memory_order_relaxed);
  ::sigaction(SIGPROF, &g_previous_action, nullptr);
}

bool Sampler::running() { return g_running.load(std::memory_order_relaxed); }

std::size_t Sampler::sample_count() { return captured(); }

std::size_t Sampler::dropped_count() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string Sampler::folded_stacks() {
  std::map<std::string, std::uint64_t> folded;
  for (const auto& frames : symbolized_stacks()) {
    std::string key;
    for (std::size_t f = 0; f < frames.size(); ++f) {
      if (f != 0) key += ';';
      key += frames[f];
    }
    ++folded[key];
  }
  // Hottest stacks first (count desc, then name for determinism).
  std::vector<std::pair<std::string, std::uint64_t>> rows(folded.begin(),
                                                          folded.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : rows) {
    out += stack + " " + std::to_string(count) + "\n";
  }
  return out;
}

std::string Sampler::top_functions_table(std::size_t limit) {
  struct Tally {
    std::uint64_t self = 0;
    std::uint64_t inclusive = 0;
  };
  std::map<std::string, Tally> tallies;
  std::size_t total = 0;
  for (const auto& frames : symbolized_stacks()) {
    ++total;
    ++tallies[frames.back()].self;
    // Inclusive counts each function once per sample, however often it
    // recurses within the stack.
    std::vector<std::string> seen;
    for (const auto& frame : frames) {
      if (std::find(seen.begin(), seen.end(), frame) == seen.end()) {
        seen.push_back(frame);
        ++tallies[frame].inclusive;
      }
    }
  }
  std::vector<std::pair<std::string, Tally>> rows(tallies.begin(),
                                                  tallies.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });
  if (rows.size() > limit) rows.resize(limit);

  util::Table table({"function", "self", "self %", "incl"});
  for (const auto& [name, tally] : rows) {
    table.add_row({name, std::to_string(tally.self),
                   total == 0
                       ? "0"
                       : util::Table::num(100.0 *
                                              static_cast<double>(tally.self) /
                                              static_cast<double>(total),
                                          1),
                   std::to_string(tally.inclusive)});
  }
  std::string out = "profile: " + std::to_string(total) + " samples";
  const std::size_t dropped = dropped_count();
  if (dropped != 0) out += " (" + std::to_string(dropped) + " dropped)";
  out += "\n" + table.to_text();
  return out;
}

void Sampler::reset() {
  if (g_running.load(std::memory_order_relaxed)) return;
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

#else  // !__linux__

bool sampler_supported() { return false; }
bool Sampler::start(const SamplerOptions&) { return false; }
void Sampler::stop() {}
bool Sampler::running() { return false; }
std::size_t Sampler::sample_count() { return 0; }
std::size_t Sampler::dropped_count() { return 0; }
std::string Sampler::folded_stacks() { return {}; }
std::string Sampler::top_functions_table(std::size_t) { return {}; }
void Sampler::reset() {}

#endif

}  // namespace socet::obs
