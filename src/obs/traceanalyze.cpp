#include "socet/obs/traceanalyze.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <map>

#include "socet/obs/jsonin.hpp"
#include "socet/obs/report.hpp"
#include "socet/util/table.hpp"

namespace socet::obs::analyze {

namespace {

/// Timestamps arrive as doubles in microseconds; treat sub-nanosecond
/// differences as coincident when ordering and containing spans.
constexpr double kEps = 1e-3;

/// Deepest tree the critical-path walk will descend; RAII spans nest a
/// few dozen levels at most, so this only stops adversarial inputs.
constexpr int kMaxDepth = 512;

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// 1-based line number of a byte offset (for parse errors on multi-line
/// artifacts; single-line Chrome documents report line 1 + the offset).
std::size_t line_of(std::string_view text, std::size_t offset) {
  offset = std::min(offset, text.size());
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() +
                            static_cast<std::ptrdiff_t>(offset), '\n'));
}

/// json_parse errors end in " at byte N"; prepend the line it lands on.
std::string located(std::string_view text, const std::string& parse_error) {
  const std::string marker = " at byte ";
  const std::size_t at = parse_error.rfind(marker);
  if (at == std::string::npos) return parse_error;
  const std::size_t offset = static_cast<std::size_t>(
      std::strtoull(parse_error.c_str() + at + marker.size(), nullptr, 10));
  return "line " + std::to_string(line_of(text, offset)) + ": " + parse_error;
}

std::uint64_t parse_hex(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

/// Stage = leading path segment, matching the run report's rollup.
std::string stage_of(const std::string& name) {
  const std::size_t slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

bool load_journal(std::string_view text, TraceData* out, std::string* error);

/// Parse one Chrome trace-event document into the span forest.
bool load_chrome(std::string_view text, TraceData* out, std::string* error) {
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(text, &doc, &parse_error)) {
    return fail(error, located(text, parse_error));
  }
  const JsonValue* events = doc.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail(error, "no traceEvents array (not a Chrome trace document)");
  }

  // Per-(pid,tid) stack of open B events for the local-trace flavor.
  std::map<std::pair<int, int>, std::vector<int>> open;
  for (std::size_t i = 0; i < events->array_value.size(); ++i) {
    const JsonValue& event = events->array_value[i];
    const auto where = [i] {
      return "traceEvents[" + std::to_string(i) + "]: ";
    };
    if (!event.is_object()) return fail(error, where() + "not an object");
    const std::string ph =
        event.get("ph") != nullptr ? event.get("ph")->string_or("") : "";
    if (ph != "B" && ph != "E" && ph != "X") continue;  // M, flow, counters

    const JsonValue* ts = event.get("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail(error, where() + "'" + ph + "' event has no numeric ts");
    }
    const int pid = static_cast<int>(
        event.get("pid") != nullptr ? event.get("pid")->number_or(1) : 1);
    const int tid = static_cast<int>(
        event.get("tid") != nullptr ? event.get("tid")->number_or(0) : 0);

    if (ph == "E") {
      auto& stack = open[{pid, tid}];
      if (stack.empty()) {
        return fail(error, where() + "'E' event with no open 'B' "
                                     "(truncated or reordered trace)");
      }
      Node& span = out->spans[static_cast<std::size_t>(stack.back())];
      span.end_us = ts->number_value;
      if (span.end_us + kEps < span.start_us) {
        return fail(error, where() + "'E' before its 'B' (span '" +
                               span.name + "')");
      }
      stack.pop_back();
      continue;
    }

    const JsonValue* name = event.get("name");
    if (name == nullptr || !name->is_string() || name->string_value.empty()) {
      return fail(error, where() + "'" + ph + "' event has no name");
    }
    Node span;
    span.name = name->string_value;
    span.pid = pid;
    span.tid = tid;
    span.start_us = ts->number_value;
    if (ph == "X") {
      const JsonValue* dur = event.get("dur");
      if (dur == nullptr || !dur->is_number() || dur->number_value < 0) {
        return fail(error, where() + "'X' event has no numeric dur");
      }
      span.end_us = span.start_us + dur->number_value;
      if (const JsonValue* args = event.get("args"); args != nullptr) {
        if (const JsonValue* id = args->get("span");
            id != nullptr && id->is_string()) {
          span.id = parse_hex(id->string_value);
        }
        if (const JsonValue* parent = args->get("parent");
            parent != nullptr && parent->is_string()) {
          span.parent = parse_hex(parent->string_value);
        }
      }
      out->spans.push_back(std::move(span));
    } else {  // "B": close on the matching "E"
      const int index = static_cast<int>(out->spans.size());
      span.end_us = span.start_us;  // until the E arrives
      out->spans.push_back(std::move(span));
      open[{pid, tid}].push_back(index);
    }
  }
  for (const auto& [lane, stack] : open) {
    if (!stack.empty()) {
      return fail(error,
                  "unclosed 'B' event for span '" +
                      out->spans[static_cast<std::size_t>(stack.back())].name +
                      "' (truncated trace)");
    }
  }
  return true;
}

/// Resolve parent links: explicit span ids first, then per-lane
/// containment for id-less spans (the local B/E flavor).
void build_forest(TraceData* out) {
  std::map<std::uint64_t, int> by_id;
  for (std::size_t i = 0; i < out->spans.size(); ++i) {
    if (out->spans[i].id != 0) {
      by_id.emplace(out->spans[i].id, static_cast<int>(i));
      out->merged = true;
    }
  }
  std::map<std::pair<int, int>, std::vector<int>> lanes;
  for (std::size_t i = 0; i < out->spans.size(); ++i) {
    Node& span = out->spans[i];
    if (span.parent != 0) {
      const auto it = by_id.find(span.parent);
      if (it != by_id.end() && it->second != static_cast<int>(i)) {
        span.parent_index = it->second;
        continue;
      }
    }
    if (span.id == 0) lanes[{span.pid, span.tid}].push_back(static_cast<int>(i));
  }
  // Containment nesting within one lane: sorted by (start asc, end
  // desc), a stack of enclosing spans mirrors the RAII nesting the
  // emitter recorded.
  for (auto& [lane, indices] : lanes) {
    std::sort(indices.begin(), indices.end(), [out](int a, int b) {
      const Node& sa = out->spans[static_cast<std::size_t>(a)];
      const Node& sb = out->spans[static_cast<std::size_t>(b)];
      if (sa.start_us != sb.start_us) return sa.start_us < sb.start_us;
      return sa.end_us > sb.end_us;
    });
    std::vector<int> stack;
    for (int index : indices) {
      const Node& span = out->spans[static_cast<std::size_t>(index)];
      while (!stack.empty()) {
        const Node& top = out->spans[static_cast<std::size_t>(stack.back())];
        if (span.start_us + kEps >= top.start_us &&
            span.end_us <= top.end_us + kEps) {
          break;  // enclosed
        }
        stack.pop_back();
      }
      if (!stack.empty()) {
        out->spans[static_cast<std::size_t>(index)].parent_index =
            stack.back();
      }
      stack.push_back(index);
    }
  }
  for (std::size_t i = 0; i < out->spans.size(); ++i) {
    const int parent = out->spans[i].parent_index;
    if (parent >= 0) {
      out->spans[static_cast<std::size_t>(parent)].children.push_back(
          static_cast<int>(i));
    } else {
      out->roots.push_back(static_cast<int>(i));
    }
  }
  std::sort(out->roots.begin(), out->roots.end(), [out](int a, int b) {
    return out->spans[static_cast<std::size_t>(a)].start_us <
           out->spans[static_cast<std::size_t>(b)].start_us;
  });
}

/// socet-journal-v1 JSONL: spans don't cross the journal, but every
/// event carries `corr` (the job) and `span` (the innermost open span
/// name), so each correlation id folds into an envelope: one
/// `journal/corr` root from first to last event, one child per span
/// name bounding the events recorded under it.  Approximate by
/// construction — event-bounded envelopes, not closed spans.
bool load_journal(std::string_view text, TraceData* out, std::string* error) {
  struct Envelope {
    double first_us = 0;
    double last_us = 0;
    std::map<std::string, std::pair<double, double>> by_span;
    bool any = false;
  };
  std::map<std::string, Envelope> corrs;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!json_parse(line, &event, &parse_error) || !event.is_object()) {
      return fail(error, "line " + std::to_string(line_no) + ": " +
                             (parse_error.empty() ? "not a JSON object"
                                                  : parse_error));
    }
    if (event.get("schema") != nullptr) continue;  // header / kind line
    const JsonValue* ts = event.get("ts_us");
    if (ts == nullptr || !ts->is_number()) {
      return fail(error, "line " + std::to_string(line_no) +
                             ": journal event has no numeric ts_us");
    }
    const std::string corr =
        event.get("corr") != nullptr ? event.get("corr")->string_or("") : "";
    Envelope& envelope = corrs[corr.empty() ? "-" : corr];
    const double at = ts->number_value;
    if (!envelope.any || at < envelope.first_us) envelope.first_us = at;
    if (!envelope.any || at > envelope.last_us) envelope.last_us = at;
    envelope.any = true;
    const std::string span =
        event.get("span") != nullptr ? event.get("span")->string_or("") : "";
    if (!span.empty()) {
      auto [it, inserted] = envelope.by_span.emplace(span, std::pair{at, at});
      if (!inserted) {
        it->second.first = std::min(it->second.first, at);
        it->second.second = std::max(it->second.second, at);
      }
    }
  }
  for (const auto& [corr, envelope] : corrs) {
    Node root;
    root.name = "journal/corr";
    root.start_us = envelope.first_us;
    root.end_us = envelope.last_us;
    const int root_index = static_cast<int>(out->spans.size());
    out->spans.push_back(std::move(root));
    for (const auto& [span_name, bounds] : envelope.by_span) {
      Node child;
      child.name = span_name;
      child.start_us = bounds.first;
      child.end_us = bounds.second;
      child.parent_index = root_index;
      out->spans.push_back(std::move(child));
    }
  }
  out->journal = true;
  // Parent links are already explicit; just fill children/roots.
  for (std::size_t i = 0; i < out->spans.size(); ++i) {
    const int parent = out->spans[i].parent_index;
    if (parent >= 0) {
      out->spans[static_cast<std::size_t>(parent)].children.push_back(
          static_cast<int>(i));
    } else {
      out->roots.push_back(static_cast<int>(i));
    }
  }
  return true;
}

/// Critical-path walk (see header): cover [span.start, until] with the
/// chain of gating spans, appending segments newest-first.
void walk_critical(const TraceData& trace, int index, double until, int depth,
                   std::vector<CriticalStep>* out) {
  const Node& span = trace.spans[static_cast<std::size_t>(index)];
  double cursor = until;
  std::vector<int> kids = span.children;
  std::sort(kids.begin(), kids.end(), [&trace](int a, int b) {
    return trace.spans[static_cast<std::size_t>(a)].end_us >
           trace.spans[static_cast<std::size_t>(b)].end_us;
  });
  for (int k : kids) {
    const Node& child = trace.spans[static_cast<std::size_t>(k)];
    if (child.end_us > cursor + kEps) continue;  // overlapped in parallel
    if (cursor <= span.start_us + kEps) break;
    if (cursor - child.end_us > kEps) {
      out->push_back({span.name, depth, child.end_us, cursor});
    }
    if (depth < kMaxDepth) {
      walk_critical(trace, k, child.end_us, depth + 1, out);
    } else {
      out->push_back({child.name, depth + 1, child.start_us, child.end_us});
    }
    cursor = child.start_us;
  }
  if (cursor - span.start_us > kEps) {
    out->push_back({span.name, depth, span.start_us, cursor});
  }
}

/// Accumulator behind NameStats: the same 64-bucket power-of-two
/// layout Histogram uses, so bucket_quantile applies verbatim.
struct Acc {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  double total_us = 0;
  double self_us = 0;
  std::uint64_t min_us = ~0ull;
  std::uint64_t max_us = 0;

  void record(double dur_us, double self) {
    const std::uint64_t v = static_cast<std::uint64_t>(
        std::llround(std::max(0.0, dur_us)));
    const std::size_t b = std::min<std::size_t>(
        v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1)),
        Histogram::kBuckets - 1);
    ++buckets[b];
    ++count;
    total_us += std::max(0.0, dur_us);
    self_us += std::max(0.0, self);
    min_us = std::min(min_us, v);
    max_us = std::max(max_us, v);
  }

  [[nodiscard]] NameStats stats(const std::string& name) const {
    NameStats s;
    s.name = name;
    s.count = count;
    s.total_us = total_us;
    s.self_us = self_us;
    s.min_us = count == 0 ? 0 : static_cast<double>(min_us);
    s.max_us = static_cast<double>(max_us);
    const std::uint64_t lo = count == 0 ? 0 : min_us;
    s.p50_us = bucket_quantile(buckets, count, 0.50, true, lo, max_us);
    s.p90_us = bucket_quantile(buckets, count, 0.90, true, lo, max_us);
    s.p99_us = bucket_quantile(buckets, count, 0.99, true, lo, max_us);
    return s;
  }
};

/// Wall time a span spent outside its children: duration minus the
/// union of child intervals (overlapping children count once).
double self_time_us(const TraceData& trace, const Node& span) {
  if (span.children.empty()) return span.dur_us();
  std::vector<std::pair<double, double>> intervals;
  intervals.reserve(span.children.size());
  for (int k : span.children) {
    const Node& child = trace.spans[static_cast<std::size_t>(k)];
    intervals.emplace_back(std::max(child.start_us, span.start_us),
                           std::min(child.end_us, span.end_us));
  }
  std::sort(intervals.begin(), intervals.end());
  double covered = 0;
  double open_from = 0;
  double open_to = -1;
  for (const auto& [from, to] : intervals) {
    if (to <= from) continue;
    if (open_to < from) {
      covered += std::max(0.0, open_to - open_from);
      open_from = from;
      open_to = to;
    } else {
      open_to = std::max(open_to, to);
    }
  }
  covered += std::max(0.0, open_to - open_from);
  return std::max(0.0, span.dur_us() - covered);
}

std::vector<NameStats> sorted_stats(const std::map<std::string, Acc>& accs) {
  std::vector<NameStats> out;
  out.reserve(accs.size());
  for (const auto& [name, acc] : accs) out.push_back(acc.stats(name));
  std::sort(out.begin(), out.end(), [](const NameStats& a, const NameStats& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.name < b.name;
  });
  return out;
}

std::string stats_json(const std::vector<NameStats>& stats) {
  std::string out = "{";
  bool first = true;
  for (const NameStats& s : stats) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(s.name) +
           "\":{\"count\":" + std::to_string(s.count) +
           ",\"total_us\":" + json_number(s.total_us) +
           ",\"self_us\":" + json_number(s.self_us) +
           ",\"min_us\":" + json_number(s.min_us) +
           ",\"max_us\":" + json_number(s.max_us) +
           ",\"p50_us\":" + json_number(s.p50_us) +
           ",\"p90_us\":" + json_number(s.p90_us) +
           ",\"p99_us\":" + json_number(s.p99_us) + "}";
  }
  return out + "}";
}

void fold_stacks(const TraceData& trace, int index, const std::string& prefix,
                 int depth, std::map<std::string, std::uint64_t>* out) {
  const Node& span = trace.spans[static_cast<std::size_t>(index)];
  const std::string path =
      prefix.empty() ? span.name : prefix + ";" + span.name;
  const std::uint64_t self = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, self_time_us(trace, span))));
  if (self > 0) (*out)[path] += self;
  if (depth >= kMaxDepth) return;
  for (int k : trace.spans[static_cast<std::size_t>(index)].children) {
    fold_stacks(trace, k, path, depth + 1, out);
  }
}

}  // namespace

bool load_trace(std::string_view text, TraceData* out, std::string* error) {
  *out = TraceData();
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) {
    return fail(error, "line 1: empty trace artifact");
  }
  // A journal is JSONL whose header line names the schema; everything
  // else is treated as one Chrome trace document.
  const std::size_t first_line_end = text.find('\n', first);
  const std::string_view first_line = text.substr(
      first, (first_line_end == std::string_view::npos ? text.size()
                                                       : first_line_end) -
                 first);
  if (first_line.find("\"socet-journal-v1\"") != std::string_view::npos) {
    if (!load_journal(text, out, error)) return false;
    return true;
  }
  if (!load_chrome(text, out, error)) return false;
  build_forest(out);
  return true;
}

std::vector<CriticalPath> critical_paths(const TraceData& trace) {
  std::vector<CriticalPath> paths;
  paths.reserve(trace.roots.size());
  for (int root : trace.roots) {
    const Node& span = trace.spans[static_cast<std::size_t>(root)];
    CriticalPath path;
    path.root = span.name;
    path.start_us = span.start_us;
    path.total_us = span.dur_us();
    walk_critical(trace, root, span.end_us, 0, &path.steps);
    std::reverse(path.steps.begin(), path.steps.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

Aggregate aggregate(const std::vector<TraceData>& traces) {
  Aggregate result;
  std::map<std::string, Acc> by_name;
  std::map<std::string, Acc> by_stage;
  for (const TraceData& trace : traces) {
    ++result.traces;
    double first = 0;
    double last = 0;
    bool any = false;
    for (const Node& span : trace.spans) {
      ++result.span_count;
      if (!any || span.start_us < first) first = span.start_us;
      if (!any || span.end_us > last) last = span.end_us;
      any = true;
      const double self = self_time_us(trace, span);
      by_name[span.name].record(span.dur_us(), self);
      by_stage[stage_of(span.name)].record(span.dur_us(), self);
      if (span.name == "serve/queue") result.queue_us += span.dur_us();
      if (span.name == "serve/job") result.compute_us += span.dur_us();
      if (span.name == "serve/respond") result.respond_us += span.dur_us();
    }
    if (any) result.wall_us += last - first;
  }
  result.by_name = sorted_stats(by_name);
  result.by_stage = sorted_stats(by_stage);
  return result;
}

DiffResult diff(const Aggregate& a, const Aggregate& b) {
  DiffResult result;
  result.a_total_us = a.wall_us;
  result.b_total_us = b.wall_us;
  result.delta_us = b.wall_us - a.wall_us;
  // Self time, not inclusive time: a slowed leaf inflates every
  // ancestor's total equally, but only its own self — so ranking by
  // self-delta names the stage that actually got slower, and each
  // microsecond of the shift is attributed to exactly one stage.
  std::map<std::string, std::pair<double, double>> stages;
  for (const NameStats& s : a.by_stage) stages[s.name].first = s.self_us;
  for (const NameStats& s : b.by_stage) stages[s.name].second = s.self_us;
  double magnitude = 0;
  for (const auto& [stage, totals] : stages) {
    DiffEntry entry;
    entry.stage = stage;
    entry.a_us = totals.first;
    entry.b_us = totals.second;
    entry.delta_us = totals.second - totals.first;
    magnitude += std::abs(entry.delta_us);
    result.entries.push_back(std::move(entry));
  }
  for (DiffEntry& entry : result.entries) {
    entry.share_pct =
        magnitude <= 0 ? 0 : 100.0 * std::abs(entry.delta_us) / magnitude;
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const DiffEntry& x, const DiffEntry& y) {
              if (x.delta_us != y.delta_us) return x.delta_us > y.delta_us;
              return x.stage < y.stage;
            });
  if (!result.entries.empty() && result.entries.front().delta_us > 0) {
    result.guilty = result.entries.front().stage;
  }
  return result;
}

std::string analysis_text(const std::vector<CriticalPath>& paths,
                          const Aggregate& aggregate, std::size_t top) {
  std::string out = "trace-analyze: " + std::to_string(aggregate.traces) +
                    " trace(s), " + std::to_string(aggregate.span_count) +
                    " spans, wall " +
                    util::Table::num(aggregate.wall_us / 1e3, 2) + " ms\n";

  // The slowest root's critical path — the chain that gated the run.
  const CriticalPath* slowest = nullptr;
  for (const CriticalPath& path : paths) {
    if (slowest == nullptr || path.total_us > slowest->total_us) {
      slowest = &path;
    }
  }
  if (slowest != nullptr) {
    out += "\ncritical path of slowest root '" + slowest->root + "' (" +
           util::Table::num(slowest->total_us / 1e3, 2) + " ms, " +
           std::to_string(slowest->steps.size()) + " steps):\n";
    util::Table steps({"#", "span", "depth", "from (us)", "self (us)",
                       "share %"});
    std::size_t shown = 0;
    for (std::size_t i = 0;
         i < slowest->steps.size() && shown < top; ++i, ++shown) {
      const CriticalStep& step = slowest->steps[i];
      steps.add_row(
          {std::to_string(i + 1), step.name, std::to_string(step.depth),
           util::Table::num(step.from_us - slowest->start_us, 1),
           util::Table::num(step.self_us(), 1),
           util::Table::num(slowest->total_us <= 0
                                ? 0
                                : 100.0 * step.self_us() / slowest->total_us,
                            1)});
    }
    out += steps.to_text();
    if (slowest->steps.size() > top) {
      out += "(" + std::to_string(slowest->steps.size() - top) +
             " more steps; --top N to widen)\n";
    }
  }

  const auto table_for = [top](const char* label,
                               const std::vector<NameStats>& stats) {
    util::Table table({label, "count", "total (us)", "self (us)", "p50",
                       "p90", "p99", "max"});
    std::size_t shown = 0;
    for (const NameStats& s : stats) {
      if (shown++ >= top) break;
      table.add_row({s.name, std::to_string(s.count),
                     util::Table::num(s.total_us, 1),
                     util::Table::num(s.self_us, 1),
                     util::Table::num(s.p50_us, 1),
                     util::Table::num(s.p90_us, 1),
                     util::Table::num(s.p99_us, 1),
                     util::Table::num(s.max_us, 1)});
    }
    return table.to_text();
  };
  out += "\nper-stage attribution:\n" + table_for("stage", aggregate.by_stage);
  out += "\nper-span latency distribution:\n" +
         table_for("span", aggregate.by_name);

  if (aggregate.queue_us > 0 || aggregate.compute_us > 0) {
    const double both = aggregate.queue_us + aggregate.compute_us;
    out += "\ndaemon split: queue " +
           util::Table::num(aggregate.queue_us, 1) + " us, compute " +
           util::Table::num(aggregate.compute_us, 1) + " us, respond " +
           util::Table::num(aggregate.respond_us, 1) + " us (queue " +
           util::Table::num(both <= 0 ? 0 : 100.0 * aggregate.queue_us / both,
                            1) +
           "% of queue+compute)\n";
  }
  return out;
}

std::string diff_text(const DiffResult& result, std::size_t top) {
  std::string out =
      "trace diff: wall " + util::Table::num(result.a_total_us / 1e3, 2) +
      " ms -> " + util::Table::num(result.b_total_us / 1e3, 2) + " ms (" +
      (result.delta_us >= 0 ? "+" : "") +
      util::Table::num(result.delta_us / 1e3, 2) + " ms)\n";
  util::Table table({"stage", "A (us)", "B (us)", "delta (us)", "share %"});
  std::size_t shown = 0;
  for (const DiffEntry& entry : result.entries) {
    if (shown++ >= top) break;
    table.add_row({entry.stage, util::Table::num(entry.a_us, 1),
                   util::Table::num(entry.b_us, 1),
                   (entry.delta_us >= 0 ? "+" : "") +
                       util::Table::num(entry.delta_us, 1),
                   util::Table::num(entry.share_pct, 1)});
  }
  out += table.to_text();
  if (result.guilty.empty()) {
    out += "no stage got slower\n";
  } else {
    const DiffEntry& guilty = result.entries.front();
    out += "guilty stage: " + guilty.stage + " (+" +
           util::Table::num(guilty.delta_us, 1) + " us, " +
           util::Table::num(guilty.share_pct, 1) + "% of the shift)\n";
  }
  return out;
}

std::string analysis_json(const std::vector<CriticalPath>& paths,
                          const Aggregate& aggregate) {
  std::string out = "{\"schema\":\"socet-trace-analysis-v1\",\"traces\":" +
                    std::to_string(aggregate.traces) +
                    ",\"spans_total\":" + std::to_string(aggregate.span_count) +
                    ",\"wall_us\":" + json_number(aggregate.wall_us);
  const CriticalPath* slowest = nullptr;
  for (const CriticalPath& path : paths) {
    if (slowest == nullptr || path.total_us > slowest->total_us) {
      slowest = &path;
    }
  }
  if (slowest != nullptr) {
    out += ",\"critical_path\":{\"root\":\"" + json_escape(slowest->root) +
           "\",\"total_us\":" + json_number(slowest->total_us) +
           ",\"steps\":[";
    bool first = true;
    for (const CriticalStep& step : slowest->steps) {
      if (!first) out += ',';
      first = false;
      out += "{\"span\":\"" + json_escape(step.name) +
             "\",\"depth\":" + std::to_string(step.depth) +
             ",\"from_us\":" + json_number(step.from_us - slowest->start_us) +
             ",\"self_us\":" + json_number(step.self_us()) + "}";
    }
    out += "]}";
  }
  out += ",\"stages\":" + stats_json(aggregate.by_stage);
  out += ",\"spans\":" + stats_json(aggregate.by_name);
  if (aggregate.queue_us > 0 || aggregate.compute_us > 0) {
    out += ",\"daemon_split\":{\"queue_us\":" +
           json_number(aggregate.queue_us) +
           ",\"compute_us\":" + json_number(aggregate.compute_us) +
           ",\"respond_us\":" + json_number(aggregate.respond_us) + "}";
  }
  return out + "}";
}

std::string diff_json(const DiffResult& result) {
  std::string out = "{\"schema\":\"socet-trace-diff-v1\",\"a_wall_us\":" +
                    json_number(result.a_total_us) +
                    ",\"b_wall_us\":" + json_number(result.b_total_us) +
                    ",\"delta_us\":" + json_number(result.delta_us) +
                    ",\"guilty\":\"" + json_escape(result.guilty) +
                    "\",\"stages\":[";
  bool first = true;
  for (const DiffEntry& entry : result.entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"" + json_escape(entry.stage) +
           "\",\"a_us\":" + json_number(entry.a_us) +
           ",\"b_us\":" + json_number(entry.b_us) +
           ",\"delta_us\":" + json_number(entry.delta_us) +
           ",\"share_pct\":" + json_number(entry.share_pct) + "}";
  }
  return out + "]}";
}

std::string folded_stacks(const std::vector<TraceData>& traces) {
  std::map<std::string, std::uint64_t> folded;
  for (const TraceData& trace : traces) {
    for (int root : trace.roots) fold_stacks(trace, root, "", 0, &folded);
  }
  std::string out;
  for (const auto& [path, self_us] : folded) {
    out += path + " " + std::to_string(self_us) + "\n";
  }
  return out;
}

}  // namespace socet::obs::analyze
