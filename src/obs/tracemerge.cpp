#include "socet/obs/tracemerge.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "socet/obs/jsonin.hpp"
#include "socet/obs/report.hpp"

namespace socet::obs {

namespace {

std::string hex_id(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t parse_u64(const std::string& text, int base) {
  return std::strtoull(text.c_str(), nullptr, base);
}

/// Greedy lane assignment for possibly-overlapping spans: `spans` must
/// be sorted by start; each span takes the lowest lane whose previous
/// occupant has already ended.  Returns one 0-based lane per span.
std::vector<std::size_t> assign_lanes(
    const std::vector<const SpanRecord*>& spans) {
  std::vector<std::uint64_t> lane_end;
  std::vector<std::size_t> lanes(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    std::size_t lane = lane_end.size();
    for (std::size_t j = 0; j < lane_end.size(); ++j) {
      if (lane_end[j] <= spans[i]->start_ns) {
        lane = j;
        break;
      }
    }
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = spans[i]->end_ns;
    lanes[i] = lane;
  }
  return lanes;
}

/// Minimal JSON writer for re-serializing parsed trace documents
/// (merge_chrome_trace_files); mirrors what json_parse accepts.
void write_json(const JsonValue& value, std::string* out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += value.bool_value ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      *out += json_number(value.number_value);
      break;
    case JsonValue::Kind::kString:
      *out += '"';
      *out += json_escape(value.string_value);
      *out += '"';
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : value.array_value) {
        if (!first) *out += ',';
        first = false;
        write_json(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, item] : value.object_value) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += json_escape(key);
        *out += "\":";
        write_json(item, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::int64_t estimate_clock_offset_ns(
    const std::vector<ClockSample>& samples) {
  bool found = false;
  std::uint64_t best_rtt = 0;
  std::int64_t best = 0;
  for (const ClockSample& sample : samples) {
    if (sample.recv_ns < sample.send_ns) continue;
    const std::uint64_t rtt = sample.recv_ns - sample.send_ns;
    if (found && rtt >= best_rtt) continue;
    found = true;
    best_rtt = rtt;
    const std::int64_t midpoint =
        static_cast<std::int64_t>(sample.send_ns + rtt / 2);
    best = static_cast<std::int64_t>(sample.server_ns) - midpoint;
  }
  return found ? best : 0;
}

std::string remote_spans_jsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += "{\"name\":\"" + json_escape(span.name) +
           "\",\"tid\":" + std::to_string(span.tid) + ",\"id\":\"" +
           hex_id(span.id) + "\",\"parent\":\"" + hex_id(span.parent) +
           "\",\"start_ns\":\"" + std::to_string(span.start_ns) +
           "\",\"end_ns\":\"" + std::to_string(span.end_ns) + "\"}\n";
  }
  return out;
}

bool parse_remote_spans_jsonl(std::string_view text,
                              std::vector<SpanRecord>* out,
                              std::string* error) {
  out->clear();
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    std::string parse_error;
    if (!json_parse(line, &value, &parse_error) || !value.is_object()) {
      if (error != nullptr) {
        *error = "span line " + std::to_string(line_no) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }
    SpanRecord span;
    const JsonValue* name = value.get("name");
    if (name == nullptr || !name->is_string()) {
      if (error != nullptr) {
        *error = "span line " + std::to_string(line_no) + ": missing name";
      }
      return false;
    }
    span.name = name->string_value;
    span.tid = static_cast<std::uint32_t>(
        value.get("tid") != nullptr ? value.get("tid")->number_or(0) : 0);
    const auto string_field = [&value](const char* key) -> std::string {
      const JsonValue* field = value.get(key);
      return field != nullptr ? field->string_or("0") : "0";
    };
    span.id = parse_u64(string_field("id"), 16);
    span.parent = parse_u64(string_field("parent"), 16);
    span.start_ns = parse_u64(string_field("start_ns"), 10);
    span.end_ns = parse_u64(string_field("end_ns"), 10);
    out->push_back(std::move(span));
  }
  return true;
}

std::string merged_chrome_trace(const MergeInput& input) {
  // Re-base daemon spans onto the client clock up front; everything
  // after this point works in one timeline.
  std::vector<SpanRecord> daemon = input.daemon_spans;
  for (SpanRecord& span : daemon) {
    span.start_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(span.start_ns) - input.clock_offset_ns);
    span.end_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(span.end_ns) - input.clock_offset_ns);
  }

  std::uint64_t epoch = 0;
  bool have_epoch = false;
  const auto consider = [&](std::uint64_t start_ns) {
    if (!have_epoch || start_ns < epoch) epoch = start_ns;
    have_epoch = true;
  };
  for (const SpanRecord& span : input.client_spans) consider(span.start_ns);
  for (const SpanRecord& span : daemon) consider(span.start_ns);

  const auto us = [epoch](std::uint64_t ns) {
    return json_number(static_cast<double>(ns - epoch) / 1e3);
  };
  const auto dur_us = [](const SpanRecord& span) {
    return json_number(static_cast<double>(span.end_ns - span.start_ns) /
                       1e3);
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };
  const auto meta = [&](int pid, int tid, const char* what,
                        const std::string& name) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"name\":\"" + what +
         "\",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
  };
  meta(1, 0, "process_name", "socet client");
  meta(2, 0, "process_name", "socet serve");

  const std::string trace_hex = hex_id(input.trace_id);
  const auto slice = [&](int pid, int tid, const SpanRecord& span,
                         bool with_parent) {
    std::string event = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                        ",\"tid\":" + std::to_string(tid) + ",\"name\":\"" +
                        json_escape(span.name) +
                        "\",\"cat\":\"socet\",\"ts\":" + us(span.start_ns) +
                        ",\"dur\":" + dur_us(span) +
                        ",\"args\":{\"trace\":\"" + trace_hex +
                        "\",\"span\":\"" + hex_id(span.id) + "\"";
    if (with_parent) event += ",\"parent\":\"" + hex_id(span.parent) + "\"";
    event += "}}";
    emit(event);
  };

  // Client submit spans overlap under pipelining, so stripe them
  // across as many pid-1 lanes as the window needed.
  std::vector<const SpanRecord*> client;
  for (const SpanRecord& span : input.client_spans) client.push_back(&span);
  std::sort(client.begin(), client.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_ns < b->start_ns;
            });
  const std::vector<std::size_t> client_lanes = assign_lanes(client);
  std::size_t client_lane_count = 0;
  std::map<std::uint64_t, std::pair<int, std::uint64_t>> client_by_id;
  for (std::size_t i = 0; i < client.size(); ++i) {
    client_lane_count = std::max(client_lane_count, client_lanes[i] + 1);
    const int tid = static_cast<int>(client_lanes[i]) + 1;
    client_by_id[client[i]->id] = {tid, client[i]->start_ns};
    slice(1, tid, *client[i], /*with_parent=*/false);
  }
  for (std::size_t lane = 0; lane < client_lane_count; ++lane) {
    meta(1, static_cast<int>(lane) + 1, "thread_name",
         "submit #" + std::to_string(lane + 1));
  }

  // Daemon worker spans (tid > 0) nest strictly per thread; the
  // cross-thread queue/respond spans (tid 0) get striped lanes.
  std::map<std::uint32_t, std::vector<const SpanRecord*>> worker_lanes;
  std::vector<const SpanRecord*> loose;
  for (const SpanRecord& span : daemon) {
    if (span.tid > 0) {
      worker_lanes[span.tid].push_back(&span);
    } else {
      loose.push_back(&span);
    }
  }
  for (auto& [tid, lane] : worker_lanes) {
    std::sort(lane.begin(), lane.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->start_ns != b->start_ns)
                  return a->start_ns < b->start_ns;
                return a->end_ns > b->end_ns;
              });
    meta(2, static_cast<int>(tid), "thread_name",
         "worker tid " + std::to_string(tid));
    for (const SpanRecord* span : lane) slice(2, static_cast<int>(tid), *span,
                                              /*with_parent=*/true);
  }
  std::sort(loose.begin(), loose.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_ns < b->start_ns;
            });
  const std::vector<std::size_t> loose_lanes = assign_lanes(loose);
  std::size_t loose_lane_count = 0;
  for (std::size_t i = 0; i < loose.size(); ++i) {
    loose_lane_count = std::max(loose_lane_count, loose_lanes[i] + 1);
    slice(2, static_cast<int>(loose_lanes[i]) + 900, *loose[i],
          /*with_parent=*/true);
  }
  for (std::size_t lane = 0; lane < loose_lane_count; ++lane) {
    meta(2, static_cast<int>(lane) + 900, "thread_name",
         "queue/respond #" + std::to_string(lane + 1));
  }

  // Flow events draw each client→daemon handoff: one `s` on the submit
  // slice, one `f` per daemon span that adopted it as parent.
  for (const SpanRecord& span : daemon) {
    const auto client_it = client_by_id.find(span.parent);
    if (client_it == client_by_id.end()) continue;
    const auto [client_tid, client_start] = client_it->second;
    const std::string id = hex_id(span.parent);
    emit("{\"ph\":\"s\",\"pid\":1,\"tid\":" + std::to_string(client_tid) +
         ",\"name\":\"submit\",\"cat\":\"socet\",\"id\":\"" + id +
         "\",\"ts\":" + us(client_start) + "}");
    const int daemon_tid = span.tid > 0 ? static_cast<int>(span.tid) : 900;
    emit("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":2,\"tid\":" +
         std::to_string(daemon_tid) +
         ",\"name\":\"submit\",\"cat\":\"socet\",\"id\":\"" + id +
         "\",\"ts\":" + us(span.start_ns) + "}");
  }

  out += "]}";
  return out;
}

bool merge_chrome_trace_files(const std::string& base_json,
                              const std::string& overlay_json,
                              double overlay_offset_us, std::string* out,
                              std::string* error) {
  const auto load = [error](const std::string& text, const char* which,
                            JsonValue* doc) -> const JsonValue* {
    std::string parse_error;
    if (!json_parse(text, doc, &parse_error)) {
      if (error != nullptr) {
        *error = std::string(which) + ": " + parse_error;
      }
      return nullptr;
    }
    const JsonValue* events = doc->get("traceEvents");
    if (events == nullptr || !events->is_array()) {
      if (error != nullptr) {
        *error = std::string(which) + ": no traceEvents array";
      }
      return nullptr;
    }
    return events;
  };
  JsonValue base_doc;
  JsonValue overlay_doc;
  const JsonValue* base_events = load(base_json, "base", &base_doc);
  if (base_events == nullptr) return false;
  const JsonValue* overlay_events = load(overlay_json, "overlay", &overlay_doc);
  if (overlay_events == nullptr) return false;

  double base_max_pid = 0;
  for (const JsonValue& event : base_events->array_value) {
    const JsonValue* pid = event.get("pid");
    if (pid != nullptr) base_max_pid = std::max(base_max_pid, pid->number_or(0));
  }

  // Span ids are only unique within one document (time-seeded per
  // process, new_span_id); two captures can reuse an id.  When the
  // overlay shares any id with the base, remap every colliding overlay
  // id to a fresh value past everything either document uses —
  // first-appearance order, so the remap is deterministic and the
  // overlay's own parent chains stay intact.  Collision-free merges
  // are re-serialized byte-identically (empty remap).
  const auto collect_ids = [](const JsonValue* events,
                              std::set<std::uint64_t>* ids,
                              std::vector<std::uint64_t>* order) {
    for (const JsonValue& event : events->array_value) {
      for (const char* key : {"id", "span", "parent"}) {
        const JsonValue* field =
            key[0] == 'i' ? event.get(key)
                          : (event.get("args") != nullptr
                                 ? event.get("args")->get(key)
                                 : nullptr);
        if (field == nullptr || !field->is_string()) continue;
        const std::uint64_t id = parse_u64(field->string_value, 16);
        if (id == 0) continue;
        if (ids->insert(id).second && order != nullptr) order->push_back(id);
      }
    }
  };
  std::set<std::uint64_t> base_ids;
  collect_ids(base_events, &base_ids, nullptr);
  std::set<std::uint64_t> overlay_ids;
  std::vector<std::uint64_t> overlay_order;  ///< first-appearance order
  collect_ids(overlay_events, &overlay_ids, &overlay_order);
  std::map<std::uint64_t, std::uint64_t> remap;
  std::uint64_t next_id =
      std::max(base_ids.empty() ? 0 : *base_ids.rbegin(),
               overlay_ids.empty() ? 0 : *overlay_ids.rbegin()) +
      1;
  for (const std::uint64_t id : overlay_order) {
    if (base_ids.count(id) != 0) remap[id] = next_id++;
  }

  *out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const JsonValue& event : base_events->array_value) {
    if (!first) *out += ',';
    first = false;
    write_json(event, out);
  }
  for (JsonValue event : overlay_events->array_value) {
    for (auto& [key, value] : event.object_value) {
      if (key == "pid" && value.is_number()) {
        value.number_value += base_max_pid;
      } else if (key == "ts" && value.is_number()) {
        value.number_value += overlay_offset_us;
      }
    }
    if (!remap.empty()) {
      const auto rewrite = [&remap](JsonValue& field) {
        if (!field.is_string()) return;
        const auto it = remap.find(parse_u64(field.string_value, 16));
        if (it != remap.end()) field.string_value = hex_id(it->second);
      };
      for (auto& [key, value] : event.object_value) {
        if (key == "id") rewrite(value);
        if (key == "args" && value.is_object()) {
          for (auto& [arg_key, arg_value] : value.object_value) {
            if (arg_key == "span" || arg_key == "parent") rewrite(arg_value);
          }
        }
      }
    }
    if (!first) *out += ',';
    first = false;
    write_json(event, out);
  }
  *out += "]}";
  return true;
}

}  // namespace socet::obs
