#include "socet/obs/benchgate.hpp"

#include <algorithm>
#include <cmath>

#include "socet/obs/jsonin.hpp"
#include "socet/obs/report.hpp"

namespace socet::obs::bench {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// q-th quantile of sorted samples, interpolated between order stats.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double within = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * within;
}

std::string point_json(const RunRecord& record, const std::string& label) {
  std::string out = "{";
  if (!label.empty()) {
    out += "\"label\":\"" + json_escape(label) + "\",";
  }
  out += "\"ok\":" + std::string(record.ok ? "true" : "false") +
         ",\"skipped\":" + (record.skipped ? "true" : "false") +
         ",\"repeats\":" + std::to_string(record.wall_ms.n) +
         ",\"wall_ms_min\":" + json_number(record.wall_ms.min) +
         ",\"wall_ms_median\":" + json_number(record.wall_ms.median) +
         ",\"wall_ms_iqr\":" + json_number(record.wall_ms.iqr()) +
         ",\"max_rss_kb\":" + std::to_string(record.max_rss_kb) +
         ",\"utime_ms\":" + json_number(record.utime_ms) +
         ",\"stime_ms\":" + json_number(record.stime_ms);
  for (const auto& [key, value] : record.extra) {
    out += ",\"" + json_escape(key) + "\":" + json_number(value);
  }
  out += "}";
  return out;
}

/// Re-render a parsed trajectory point verbatim enough for appends
/// (numbers round-trip through json_number, which is what wrote them).
std::string reencode(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return json_number(value.number_value);
    case JsonValue::Kind::kString:
      return "\"" + json_escape(value.string_value) + "\"";
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < value.array_value.size(); ++i) {
        if (i != 0) out += ',';
        out += reencode(value.array_value[i]);
      }
      return out + "]";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < value.object_value.size(); ++i) {
        if (i != 0) out += ',';
        out += "\"" + json_escape(value.object_value[i].first) +
               "\":" + reencode(value.object_value[i].second);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace

bool parse_bench_line(std::string_view stderr_text, BenchLine* out,
                      std::string* error) {
  *out = BenchLine();
  // Lines are `BENCH_<name>.json <json>`; take the first one.
  std::size_t line_start = 0;
  while (line_start < stderr_text.size()) {
    std::size_t line_end = stderr_text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = stderr_text.size();
    const std::string_view line =
        stderr_text.substr(line_start, line_end - line_start);
    if (line.rfind("BENCH_", 0) == 0) {
      const std::size_t space = line.find(' ');
      if (space == std::string_view::npos) {
        return fail(error, "BENCH_ line has no JSON payload");
      }
      JsonValue doc;
      std::string parse_error;
      if (!json_parse(line.substr(space + 1), &doc, &parse_error)) {
        return fail(error, "bad BENCH_ JSON: " + parse_error);
      }
      if (!doc.is_object()) return fail(error, "BENCH_ payload not an object");
      const JsonValue* name = doc.get("name");
      if (name == nullptr || !name->is_string() || name->string_value.empty()) {
        return fail(error, "BENCH_ line missing \"name\"");
      }
      out->name = name->string_value;
      const JsonValue* ok = doc.get("ok");
      if (ok == nullptr || !ok->is_bool()) {
        return fail(error, "BENCH_ line missing \"ok\"");
      }
      out->ok = ok->bool_value;
      out->skipped = doc.get("skipped") != nullptr &&
                     doc.get("skipped")->bool_or(false);
      const JsonValue* wall = doc.get("wall_ms");
      // json_number emits null for NaN/Inf; a bench with a broken clock
      // must be rejected, not recorded as a zero-cost run.
      if (wall == nullptr || !wall->is_number()) {
        return fail(error, "BENCH_ line has no numeric \"wall_ms\" (null "
                           "means the bench's clock produced a non-finite "
                           "value)");
      }
      out->wall_ms = wall->number_value;
      for (const auto& [key, value] : doc.object_value) {
        if (key == "name" || key == "ok" || key == "skipped" ||
            key == "wall_ms" || key == "skip_reason") {
          continue;
        }
        if (value.is_number()) out->extra.emplace_back(key, value.number_value);
      }
      return true;
    }
    line_start = line_end + 1;
  }
  return fail(error, "no BENCH_ line found on stderr");
}

RepeatStats summarize_repeats(std::vector<double> samples) {
  RepeatStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.n = samples.size();
  stats.min = samples.front();
  stats.median = sorted_quantile(samples, 0.50);
  stats.q1 = sorted_quantile(samples, 0.25);
  stats.q3 = sorted_quantile(samples, 0.75);
  return stats;
}

std::string trajectory_json(std::string_view existing_text,
                            const RunRecord& record,
                            const std::string& label) {
  std::vector<std::string> points;
  JsonValue existing;
  if (!existing_text.empty() && json_parse(existing_text, &existing) &&
      existing.is_object()) {
    const JsonValue* schema = existing.get("schema");
    const JsonValue* old_points = existing.get("points");
    if (schema != nullptr &&
        schema->string_or("") == "socet-bench-trajectory-v1" &&
        old_points != nullptr && old_points->is_array()) {
      for (const JsonValue& point : old_points->array_value) {
        points.push_back(reencode(point));
      }
    }
  }
  points.push_back(point_json(record, label));

  std::string out = "{\"schema\":\"socet-bench-trajectory-v1\",\"name\":\"" +
                    json_escape(record.name) + "\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n " + points[i];
  }
  out += "\n]}\n";
  return out;
}

bool trajectory_last_median(std::string_view text, double* median_ms) {
  JsonValue doc;
  if (text.empty() || !json_parse(text, &doc) || !doc.is_object()) {
    return false;
  }
  const JsonValue* schema = doc.get("schema");
  const JsonValue* points = doc.get("points");
  if (schema == nullptr ||
      schema->string_or("") != "socet-bench-trajectory-v1" ||
      points == nullptr || !points->is_array()) {
    return false;
  }
  // Newest comparable point wins; skipped/failed points never carry a
  // meaningful median, so walk backwards past them.
  for (auto it = points->array_value.rbegin(); it != points->array_value.rend();
       ++it) {
    if (!it->is_object()) continue;
    if (it->get("skipped") != nullptr &&
        it->get("skipped")->bool_or(false)) {
      continue;
    }
    if (it->get("ok") != nullptr && !it->get("ok")->bool_or(true)) continue;
    const JsonValue* median = it->get("wall_ms_median");
    if (median == nullptr || !median->is_number()) continue;
    *median_ms = median->number_value;
    return true;
  }
  return false;
}

bool parse_baseline(std::string_view text, Baseline* out, std::string* error) {
  *out = Baseline();
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(text, &doc, &parse_error)) {
    return fail(error, "bad baseline JSON: " + parse_error);
  }
  const JsonValue* schema = doc.get("schema");
  if (schema == nullptr ||
      schema->string_or("") != "socet-bench-baseline-v1") {
    return fail(error, "baseline missing schema socet-bench-baseline-v1");
  }
  const JsonValue* benches = doc.get("benches");
  if (benches == nullptr || !benches->is_object()) {
    return fail(error, "baseline missing \"benches\" object");
  }
  for (const auto& [name, entry] : benches->object_value) {
    const JsonValue* wall = entry.get("wall_ms");
    if (wall == nullptr || !wall->is_number()) {
      return fail(error, "baseline entry '" + name +
                             "' has no numeric wall_ms");
    }
    out->wall_ms[name] = wall->number_value;
  }
  return true;
}

std::string baseline_json(const std::vector<RunRecord>& records) {
  std::string out = "{\"schema\":\"socet-bench-baseline-v1\",\"benches\":{";
  bool first = true;
  for (const RunRecord& record : records) {
    if (record.skipped || !record.ok) continue;
    if (!first) out += ',';
    first = false;
    out += "\n \"" + json_escape(record.name) +
           "\":{\"wall_ms\":" + json_number(record.wall_ms.median) + "}";
  }
  out += "\n}}\n";
  return out;
}

std::vector<CheckOutcome> check_against_baseline(
    const std::vector<RunRecord>& records, const Baseline& baseline,
    double tolerance_pct) {
  std::vector<CheckOutcome> outcomes;
  outcomes.reserve(records.size());
  for (const RunRecord& record : records) {
    CheckOutcome outcome;
    outcome.name = record.name;
    outcome.measured_ms = record.wall_ms.median;
    if (record.skipped) {
      outcome.verdict = CheckOutcome::Verdict::kSkipped;
    } else if (!record.ok) {
      outcome.verdict = CheckOutcome::Verdict::kFailed;
    } else {
      const auto it = baseline.wall_ms.find(record.name);
      if (it == baseline.wall_ms.end()) {
        outcome.verdict = CheckOutcome::Verdict::kNoBaseline;
      } else {
        outcome.baseline_ms = it->second;
        // The IQR term absorbs run-to-run jitter, capped at the
        // tolerance margin itself so a noisy-but-short bench can at
        // most double its allowance, never hide a 2x slowdown.
        const double margin = it->second * tolerance_pct / 100.0;
        outcome.margin_ms = margin;
        outcome.iqr_allowance_ms = std::min(record.wall_ms.iqr(), margin);
        outcome.limit_ms =
            it->second + outcome.margin_ms + outcome.iqr_allowance_ms;
        outcome.verdict = record.wall_ms.median > outcome.limit_ms
                              ? CheckOutcome::Verdict::kRegression
                              : CheckOutcome::Verdict::kPass;
      }
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

bool has_regression(const std::vector<CheckOutcome>& outcomes) {
  for (const CheckOutcome& outcome : outcomes) {
    if (outcome.verdict == CheckOutcome::Verdict::kRegression ||
        outcome.verdict == CheckOutcome::Verdict::kFailed) {
      return true;
    }
  }
  return false;
}

}  // namespace socet::obs::bench
