#include "socet/obs/explain.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace socet::obs {

namespace {

std::string field_str(const JsonValue& event, std::string_view key) {
  const JsonValue* value = event.get(key);
  return value == nullptr ? std::string() : value->string_or("");
}

long long field_int(const JsonValue& event, std::string_view key,
                    long long fallback = 0) {
  const JsonValue* value = event.get(key);
  if (value == nullptr || !value->is_number()) return fallback;
  return static_cast<long long>(value->number_value);
}

std::string event_type(const JsonValue& event) {
  return field_str(event, "type");
}

/// Render one JSON scalar the way the journal wrote it.
std::string scalar_text(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kString:
      return value.string_value;
    case JsonValue::Kind::kBool:
      return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      const double d = value.number_value;
      const long long i = static_cast<long long>(d);
      if (static_cast<double>(i) == d) return std::to_string(i);
      return std::to_string(d);
    }
    default:
      return "?";
  }
}

/// One event as an indented `#seq type key=value ...` line.  The
/// bookkeeping keys (seq/ts_us/tid/span/type) are folded into the
/// prefix; `corr` and the payload keys print in journal order.
std::string render_event(const JsonValue& event) {
  std::string line = "  #" + std::to_string(field_int(event, "seq"));
  line += ' ';
  line += event_type(event);
  for (const auto& [key, value] : event.object_value) {
    if (key == "seq" || key == "ts_us" || key == "tid" || key == "span" ||
        key == "type") {
      continue;
    }
    line += ' ';
    line += key;
    line += '=';
    line += scalar_text(value);
  }
  line += '\n';
  return line;
}

bool mentions(const JsonValue& event, std::string_view key,
              const std::string& target) {
  const std::string value = field_str(event, key);
  return !value.empty() &&
         (value == target || value.find(target) != std::string::npos);
}

}  // namespace

bool load_journal(std::string_view text, JournalDoc* out,
                  std::string* error) {
  out->events.clear();
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  std::size_t pos = 0;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    JsonValue value;
    std::string parse_error;
    if (!json_parse(line, &value, &parse_error)) {
      return fail("line " + std::to_string(line_no) + ": " + parse_error);
    }
    if (!value.is_object()) {
      return fail("line " + std::to_string(line_no) + ": not a JSON object");
    }
    if (!saw_header) {
      const std::string schema = field_str(value, "schema");
      if (schema != "socet-journal-v1") {
        return fail("line " + std::to_string(line_no) +
                    ": expected {\"schema\":\"socet-journal-v1\",...} header, "
                    "got schema \"" +
                    schema + "\"");
      }
      saw_header = true;
      continue;
    }
    if (value.get("type") == nullptr) {
      return fail("line " + std::to_string(line_no) +
                  ": event without \"type\"");
    }
    out->events.push_back(std::move(value));
  }
  if (!saw_header) return fail("empty journal: no header line");
  return true;
}

std::string explain_mux(const JournalDoc& doc, const std::string& target) {
  std::string body;
  std::size_t count = 0;
  long long cells = 0;
  for (const JsonValue& event : doc.events) {
    const std::string type = event_type(event);
    if (type != "transparency/mux" && type != "ccg/mux") continue;
    if (!target.empty() && !mentions(event, "core", target) &&
        !mentions(event, "port", target) && !mentions(event, "pair", target)) {
      continue;
    }
    body += render_event(event);
    ++count;
    cells += field_int(event, "cells");
  }

  std::string out = "explain mux";
  if (!target.empty()) out += " \"" + target + "\"";
  out += ": " + std::to_string(count) + " mux insertion(s)\n";
  if (count == 0) {
    out += "  no mux events match; the searches found paths over "
           "existing/HSCAN edges.\n";
    return out;
  }
  out += body;
  out += "  total mux cost: " + std::to_string(cells) + " cell(s)\n";
  return out;
}

std::string explain_version(const JournalDoc& doc, const std::string& core) {
  std::string body;
  std::size_t paths = 0;
  std::size_t muxes = 0;
  std::map<std::string, std::size_t> by_class;
  for (const JsonValue& event : doc.events) {
    const std::string type = event_type(event);
    if (type != "transparency/path" && type != "transparency/mux") continue;
    if (!core.empty() && field_str(event, "core") != core) continue;
    body += render_event(event);
    if (type == "transparency/path") {
      ++paths;
      ++by_class[field_str(event, "edge_class")];
    } else {
      ++muxes;
    }
  }

  std::string out = "explain version";
  if (!core.empty()) out += " \"" + core + "\"";
  out += ": " + std::to_string(paths) + " path(s), " +
         std::to_string(muxes) + " mux fallback(s)\n";
  if (paths == 0 && muxes == 0) {
    out += "  no transparency events for this core; was the journal "
           "recorded during version construction (menus/plan/optimize)?\n";
    return out;
  }
  out += body;
  for (const auto& [edge_class, n] : by_class) {
    out += "  " + std::to_string(n) + " terminal(s) satisfied via " +
           edge_class + " edges\n";
  }
  return out;
}

std::string explain_route(const JournalDoc& doc, const std::string& core) {
  std::string body;
  std::size_t routes = 0;
  std::size_t muxes = 0;
  long long total_shift = 0;
  std::string planned;
  for (const JsonValue& event : doc.events) {
    const std::string type = event_type(event);
    if (type != "ccg/route" && type != "ccg/mux" && type != "soc/core_planned")
      continue;
    if (!core.empty() && field_str(event, "core") != core) continue;
    body += render_event(event);
    if (type == "ccg/route") {
      ++routes;
      total_shift += field_int(event, "shift");
    } else if (type == "ccg/mux") {
      ++muxes;
    } else {
      planned += "  period=" + std::to_string(field_int(event, "period")) +
                 " flush=" + std::to_string(field_int(event, "flush")) +
                 " vectors=" + std::to_string(field_int(event, "vectors")) +
                 " tat=" + std::to_string(field_int(event, "tat")) + "\n";
    }
  }

  std::string out = "explain route";
  if (!core.empty()) out += " \"" + core + "\"";
  out += ": " + std::to_string(routes) + " route(s), " +
         std::to_string(muxes) + " system mux(es)\n";
  if (routes == 0 && muxes == 0 && planned.empty()) {
    out += "  no scheduling events for this test-set; was the journal "
           "recorded during plan/optimize?\n";
    return out;
  }
  out += body;
  out += "  total reservation shift: " + std::to_string(total_shift) +
         " cycle(s)\n";
  if (!planned.empty()) out += planned;
  return out;
}

std::string explain_reject(const JournalDoc& doc, const std::string& core,
                           const std::string& version) {
  const auto version_matches = [&](const JsonValue& event) {
    if (version.empty()) return true;
    const std::string to = field_str(event, "to");
    if (to == version || to == "Version " + version) return true;
    const long long index = field_int(event, "to_index", -1);
    return index >= 0 && std::to_string(index) == version;
  };

  std::string body;
  std::size_t count = 0;
  std::map<std::string, std::size_t> reasons;
  for (const JsonValue& event : doc.events) {
    const std::string type = event_type(event);
    const bool rejected_proposal =
        type == "opt/propose" && field_str(event, "outcome") == "rejected";
    if (!rejected_proposal && type != "opt/reject_final") continue;
    if (!core.empty() && field_str(event, "core") != core) continue;
    if (!version_matches(event)) continue;
    body += render_event(event);
    ++count;
    ++reasons[field_str(event, "reason")];
  }

  std::string out = "explain reject";
  if (!core.empty()) out += " \"" + core + "\"";
  if (!version.empty()) out += " version \"" + version + "\"";
  out += ": " + std::to_string(count) + " rejection(s)\n";
  if (count == 0) {
    out += "  no rejected optimizer moves match; either the move was "
           "accepted or it was never proposed.\n";
    return out;
  }
  out += body;
  for (const auto& [reason, n] : reasons) {
    out += "  " + std::to_string(n) + "x " + reason + "\n";
  }
  return out;
}

}  // namespace socet::obs
