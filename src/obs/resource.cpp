#include "socet/obs/resource.hpp"

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#include "socet/obs/report.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace socet::obs {

namespace {

std::atomic<bool> g_resources_enabled{false};

std::int64_t timeval_us(const timeval& tv) {
  return static_cast<std::int64_t>(tv.tv_sec) * 1000000 +
         static_cast<std::int64_t>(tv.tv_usec);
}

// ------------------------------------------------- hardware counters

#if defined(__linux__)

/// One perf fd per event, each with `inherit` so threads created after
/// the open are counted.  (Grouped reads and inherit don't mix, hence
/// three independent fds.)
class HwCounters {
 public:
  void open() {
    if (opened_) return;
    opened_ = true;
    fd_cycles_ = open_one(PERF_COUNT_HW_CPU_CYCLES);
    fd_instructions_ = open_one(PERF_COUNT_HW_INSTRUCTIONS);
    fd_cache_misses_ = open_one(PERF_COUNT_HW_CACHE_MISSES);
    // All-or-nothing: a partial set would invite bogus ratios.
    if (fd_cycles_ < 0 || fd_instructions_ < 0 || fd_cache_misses_ < 0) {
      close_all();
    }
  }

  [[nodiscard]] bool available() const { return fd_cycles_ >= 0; }

  void read_into(RunResources* out) const {
    out->hw_available = available();
    if (!available()) return;
    out->hw_cycles = read_one(fd_cycles_);
    out->hw_instructions = read_one(fd_instructions_);
    out->hw_cache_misses = read_one(fd_cache_misses_);
  }

 private:
  static int open_one(std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 0;
    attr.inherit = 1;
    attr.exclude_kernel = 1;  // works without perf_event_paranoid <= 1
    attr.exclude_hv = 1;
    // EPERM/EACCES (paranoid sysctl, seccomp) and ENOSYS (kernel built
    // without perf) all land here; the caller treats < 0 as "no hw".
    return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                      -1, 0));
  }

  static std::uint64_t read_one(int fd) {
    std::uint64_t value = 0;
    if (::read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
    return value;
  }

  void close_all() {
    for (int* fd : {&fd_cycles_, &fd_instructions_, &fd_cache_misses_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
  }

  bool opened_ = false;
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_cache_misses_ = -1;
};

HwCounters& hw_counters() {
  static HwCounters counters;
  return counters;
}

#endif  // __linux__

// ---------------------------------------------------- stage table

struct StageTally {
  std::uint64_t count = 0;
  RusageDelta usage;
};

struct StageTable {
  std::mutex mutex;
  std::map<std::string, StageTally> stages;
};

StageTable& stage_table() {
  static StageTable table;
  return table;
}

}  // namespace

bool resources_enabled() {
  return g_resources_enabled.load(std::memory_order_relaxed);
}

void set_resources_enabled(bool enabled) {
#if defined(__linux__)
  if (enabled) hw_counters().open();
#endif
  g_resources_enabled.store(enabled, std::memory_order_relaxed);
}

RusageDelta thread_usage() {
  RusageDelta delta;
#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
  rusage usage{};
#if defined(RUSAGE_THREAD)
  ::getrusage(RUSAGE_THREAD, &usage);
#else
  ::getrusage(RUSAGE_SELF, &usage);
#endif
  delta.utime_us = timeval_us(usage.ru_utime);
  delta.stime_us = timeval_us(usage.ru_stime);
  delta.minor_faults = usage.ru_minflt;
  delta.major_faults = usage.ru_majflt;
#endif
  return delta;
}

RunResources run_resources() {
  RunResources run;
#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  run.peak_rss_kb = usage.ru_maxrss / 1024;
#else
  run.peak_rss_kb = usage.ru_maxrss;
#endif
  run.usage.utime_us = timeval_us(usage.ru_utime);
  run.usage.stime_us = timeval_us(usage.ru_stime);
  run.usage.minor_faults = usage.ru_minflt;
  run.usage.major_faults = usage.ru_majflt;
#endif
#if defined(__linux__)
  hw_counters().read_into(&run);
#endif
  return run;
}

ResourceScope::~ResourceScope() {
  if (name_ == nullptr) return;
  const RusageDelta end = thread_usage();
  StageTable& table = stage_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  StageTally& tally = table.stages[name_];
  ++tally.count;
  tally.usage.utime_us += end.utime_us - start_.utime_us;
  tally.usage.stime_us += end.stime_us - start_.stime_us;
  tally.usage.minor_faults += end.minor_faults - start_.minor_faults;
  tally.usage.major_faults += end.major_faults - start_.major_faults;
}

std::vector<StageUsage> stage_resources() {
  StageTable& table = stage_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  std::vector<StageUsage> out;
  out.reserve(table.stages.size());
  for (const auto& [name, tally] : table.stages) {
    out.push_back({name, tally.count, tally.usage});
  }
  return out;
}

std::string resources_json() {
  const RunResources run = run_resources();
  std::string out =
      "{\"run\":{\"peak_rss_kb\":" + std::to_string(run.peak_rss_kb) +
      ",\"utime_us\":" + std::to_string(run.usage.utime_us) +
      ",\"stime_us\":" + std::to_string(run.usage.stime_us) +
      ",\"minor_faults\":" + std::to_string(run.usage.minor_faults) +
      ",\"major_faults\":" + std::to_string(run.usage.major_faults) +
      ",\"hw\":{\"available\":" + (run.hw_available ? "true" : "false") +
      ",\"cycles\":" + std::to_string(run.hw_cycles) +
      ",\"instructions\":" + std::to_string(run.hw_instructions) +
      ",\"cache_misses\":" + std::to_string(run.hw_cache_misses) +
      "}},\"stages\":{";
  bool first = true;
  for (const StageUsage& stage : stage_resources()) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(stage.name) +
           "\":{\"count\":" + std::to_string(stage.count) +
           ",\"utime_us\":" + std::to_string(stage.usage.utime_us) +
           ",\"stime_us\":" + std::to_string(stage.usage.stime_us) +
           ",\"minor_faults\":" + std::to_string(stage.usage.minor_faults) +
           ",\"major_faults\":" + std::to_string(stage.usage.major_faults) +
           "}";
  }
  out += "}}";
  return out;
}

void reset_resources() {
  StageTable& table = stage_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  table.stages.clear();
}

}  // namespace socet::obs
