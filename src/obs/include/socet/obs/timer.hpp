// The shared monotonic clock.
//
// Every timed quantity in the codebase — span timestamps, service
// queue/wall times, bench wall clocks — reads this one steady clock so
// numbers from different layers line up in the same trace.
#pragma once

#include <chrono>
#include <cstdint>

namespace socet::obs {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since an arbitrary (but fixed per process) epoch.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// RAII-free stopwatch: construct (or reset) to start, read at will.
class StopWatch {
 public:
  StopWatch() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::uint64_t start_;
};

}  // namespace socet::obs
