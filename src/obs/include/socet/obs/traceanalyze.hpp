// Offline trace analytics — the layer that *reads* what five PRs of
// instrumentation write.
//
// Input: any Chrome trace-event document the system emits — a local
// `--trace` file (matched B/E pairs per tid lane, trace.cpp), a merged
// client/daemon trace (`X` slices with hex `args.span`/`args.parent`
// ids, tracemerge.cpp), a `socet trace-merge` concatenation of either —
// or a `socet-journal-v1` JSONL document (events folded into per-corr
// envelope spans keyed by their `span` field).  `load_trace` normalizes
// all of them into one span forest; parse failures carry 1-based line
// numbers so a truncated artifact names the break point.
//
// Three analyses on top (the `socet trace-analyze` CLI verb renders
// them; socet_bench reuses the aggregation for regression attribution):
//
//  * critical path — per root span (one per job in a merged trace),
//    walk back from the root's end through whichever child gated each
//    instant, yielding a chain of segments that covers [start, end]
//    exactly once.  Every microsecond of the job's wall time is
//    attributed to exactly one span: self time where the span itself
//    was the frontier, descent where a child was.
//  * aggregation — fold any number of traces/jobs into per-span-name
//    and per-stage latency distributions using the same 64-bucket
//    power-of-two histogram + `bucket_quantile` rank walk the metrics
//    registry uses (metrics.hpp), plus an exact self-time split
//    (children's covered intervals are union-merged, so overlapping
//    children never double-subtract).  Optionally rendered as folded
//    stacks (`a;b;c <self_us>`), flamegraph-compatible.
//  * differential attribution — subtract two aggregates and rank
//    stages by their contribution to the total delta; ties break by
//    name so the ranking is stable run to run.
//
// Stage = the leading `<stage>/` segment of a span name, matching the
// run report's `stages` rollup and docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "socet/obs/metrics.hpp"

namespace socet::obs::analyze {

/// One normalized span in the forest.
struct Node {
  std::string name;
  int pid = 1;
  int tid = 0;
  double start_us = 0;
  double end_us = 0;
  std::uint64_t id = 0;      ///< 0 when the format carries no span ids
  std::uint64_t parent = 0;  ///< as declared; 0 = root
  int parent_index = -1;     ///< resolved tree link (-1 = root)
  std::vector<int> children;

  [[nodiscard]] double dur_us() const { return end_us - start_us; }
};

/// One parsed trace artifact: the span forest plus provenance.
struct TraceData {
  std::vector<Node> spans;
  std::vector<int> roots;  ///< indices of parentless spans
  bool merged = false;     ///< true when spans carried explicit ids
  bool journal = false;    ///< true when synthesized from a journal
};

/// Parse one artifact (Chrome trace JSON or socet-journal-v1 JSONL)
/// into a span forest.  Returns false with a line-numbered message on
/// malformed or truncated input; an empty-but-valid trace succeeds
/// with zero spans.
bool load_trace(std::string_view text, TraceData* out,
                std::string* error = nullptr);

/// One segment of a critical path: `[from_us, to_us)` was gated by
/// `name` at nesting depth `depth` (0 = the root itself).
struct CriticalStep {
  std::string name;
  int depth = 0;
  double from_us = 0;
  double to_us = 0;

  [[nodiscard]] double self_us() const { return to_us - from_us; }
};

/// The critical path of one root span, chronological order.
struct CriticalPath {
  std::string root;
  double start_us = 0;
  double total_us = 0;
  std::vector<CriticalStep> steps;
};

/// Critical paths for every root in the forest, in start order.
std::vector<CriticalPath> critical_paths(const TraceData& trace);

/// Latency distribution of one span name (or one stage) across every
/// analyzed trace.  Quantiles come from the 64-bucket power-of-two
/// rank walk (`bucket_quantile`, observed=true) over integer
/// microseconds, clamped to the exact extremes.
struct NameStats {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0;
  double self_us = 0;  ///< total minus children's union-merged cover
  double min_us = 0;
  double max_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
};

/// Aggregation over any number of traces.
struct Aggregate {
  std::size_t traces = 0;
  std::size_t span_count = 0;
  double wall_us = 0;  ///< sum over traces of (max end - min start)
  std::vector<NameStats> by_name;   ///< sorted by total_us desc
  std::vector<NameStats> by_stage;  ///< folded by leading segment
  // Daemon runs: the queue-vs-compute split from the synthesized
  // serve/queue / serve/job / serve/respond spans (zero when absent).
  double queue_us = 0;
  double compute_us = 0;
  double respond_us = 0;
};

Aggregate aggregate(const std::vector<TraceData>& traces);

/// One stage's contribution to the delta between two aggregates.
/// Times are *self* microseconds: self partitions each trace's wall
/// time across stages exactly once, so a slowdown lands on the stage
/// that caused it, not on every enclosing ancestor too.
struct DiffEntry {
  std::string stage;
  double a_us = 0;
  double b_us = 0;
  double delta_us = 0;   ///< b - a
  double share_pct = 0;  ///< |delta| / sum(|delta|) * 100 (0 when flat)
};

/// Stages ranked by signed delta descending (largest slowdown first),
/// name-tiebroken for stability.  `guilty` names the top positive
/// contributor ("" when nothing got slower).
struct DiffResult {
  double a_total_us = 0;
  double b_total_us = 0;
  double delta_us = 0;
  std::string guilty;
  std::vector<DiffEntry> entries;
};

DiffResult diff(const Aggregate& a, const Aggregate& b);

// --- renderings -------------------------------------------------------

/// Human tables (util::Table) for the CLI: critical path of the
/// slowest root (up to `top` steps), the per-stage and per-name
/// distribution tables (up to `top` rows each), and the queue/compute
/// split when present.
std::string analysis_text(const std::vector<CriticalPath>& paths,
                          const Aggregate& aggregate, std::size_t top);

/// Diff attribution table + guilty-stage headline.
std::string diff_text(const DiffResult& result, std::size_t top);

/// `socet-trace-analysis-v1` JSON document.
std::string analysis_json(const std::vector<CriticalPath>& paths,
                          const Aggregate& aggregate);

/// `socet-trace-diff-v1` JSON document.
std::string diff_json(const DiffResult& result);

/// Folded stacks over the whole forest (`root;child;leaf <self_us>`
/// with integer microseconds, identical paths summed) — the same
/// format the SIGPROF sampler emits, so existing flamegraph tooling
/// applies unchanged.
std::string folded_stacks(const std::vector<TraceData>& traces);

}  // namespace socet::obs::analyze
