// Machine-readable run reports.
//
// One JSON document per run (`socet ... --report out.json`) that folds
// together the metrics registry and per-stage span rollups, so a CI job
// or perf-trajectory script can diff "where the milliseconds went"
// across commits without scraping human tables.  Schema is versioned
// and documented in docs/OBSERVABILITY.md.
#pragma once

#include <string>
#include <string_view>

namespace socet::obs {

// --- tiny JSON helpers (shared by metrics/trace/report/bench) ---------

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);
/// Shortest round-trip-safe rendering of a double ("12", "12.5", "0.001").
std::string json_number(double value);

/// The whole report:
///   {"schema": "socet-report-v1", "command": ...,
///    "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
///    "spans": {<name>: {count, total_us, mean_us, min_us, max_us}},
///    "stages": {<prefix>: {spans, total_us}},
///    "resources": {"run": ..., "stages": ...}}   (obs/resource.hpp)
/// Stage = everything before the first '/' of a span name.
std::string run_report_json(const std::string& command);

}  // namespace socet::obs
