// Scoped wall-time spans with Chrome trace-event export.
//
//   void plan(...) {
//     SOCET_SPAN("soc/plan_chip_test");
//     ...
//   }
//
// A Span is an RAII guard: when tracing is enabled it records one
// (name, thread, start, end) event into a per-thread buffer on
// destruction; when disabled its constructor is a single relaxed atomic
// load.  Buffers register themselves with a global sink on first use
// and hand their events back when the thread exits, so worker-pool
// threads that die before export still appear in the trace — each
// thread gets its own lane (`tid`) in chrome://tracing / Perfetto.
//
// Export (`chrome_trace_json`) must only run when no instrumented
// thread is concurrently recording — in practice: after worker pools
// have joined, which is how the CLI uses it.
//
// Span names are `<stage>/<what>` string literals; the leading stage
// segment is what the run report aggregates by (see report.hpp and
// docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "socet/obs/journal.hpp"
#include "socet/obs/timer.hpp"

namespace socet::obs {

/// Global tracing switch (independent of the metrics switch).
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// One closed span.  `name` must be a string with static storage
/// duration (SOCET_SPAN passes literals).
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// One closed span with an identity: part of a distributed trace.
/// Unlike TraceEvent these are self-contained (owned name, explicit
/// parent link) so they can cross the process boundary (tracemerge.hpp
/// serializes them for the serve `spans` verb).
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;   ///< 0 = root of its capture
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Process-unique span/trace id: a per-process time-derived seed in the
/// high bits (so two processes started at different nanoseconds draw
/// from disjoint ranges) plus an atomic counter.  Never returns 0.
std::uint64_t new_span_id();

namespace detail {
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns);
/// Test hook: when SOCET_TRACE_TEST_SLOW="<span-name>:<us>" is set in
/// the environment, sleep that long on entry to the named span.  The
/// knob exists so trace-diff tests can slow one stage deterministically
/// (docs/OBSERVABILITY.md); parsed once, zero cost when unset.
void maybe_test_delay(const char* name);
bool capture_active();
void capture_open(std::uint64_t* id, std::uint64_t* parent);
void capture_close(const char* name, std::uint64_t id, std::uint64_t parent,
                   std::uint64_t start_ns, std::uint64_t end_ns);
}  // namespace detail

/// Adopt a remote trace context on the *current thread*: while alive,
/// every SOCET_SPAN this thread opens is also recorded as a SpanRecord
/// with a fresh span id, parented under the innermost open span (or
/// under `remote_parent` at the top).  Independent of the global trace
/// switch — this is how daemon workers trace one request on behalf of
/// a client without turning whole-process tracing on.  `take()` hands
/// the records back; call it after the instrumented scope closed.
/// Captures do not nest: a second capture on the same thread is
/// passive (records nothing, take() returns empty).
class SpanCapture {
 public:
  SpanCapture(std::uint64_t trace_id, std::uint64_t remote_parent);
  ~SpanCapture();
  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  std::uint64_t trace_id() const { return trace_id_; }
  std::vector<SpanRecord> take();

 private:
  std::uint64_t trace_id_ = 0;
  void* state_ = nullptr;  ///< detail::CaptureState*, null if passive
};

class Span {
 public:
  explicit Span(const char* name) {
    const bool capturing = detail::capture_active();
    if (trace_enabled()) traced_ = true;
    if (traced_ || capturing) {
      name_ = name;
      start_ns_ = now_ns();
      // After the start stamp, so the injected latency lands inside
      // this span's duration (that's what the diff test attributes).
      detail::maybe_test_delay(name);
    }
    if (capturing) {
      captured_ = true;
      detail::capture_open(&capture_id_, &capture_parent_);
    }
    // The journal's crash dump reports each thread's active spans, so
    // spans also maintain a journal-side stack while it is recording.
    if (journal_enabled()) {
      journal_pushed_ = true;
      detail::journal_push_span(name);
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      const std::uint64_t end_ns = now_ns();
      if (traced_) detail::record_span(name_, start_ns_, end_ns);
      if (captured_) {
        detail::capture_close(name_, capture_id_, capture_parent_, start_ns_,
                              end_ns);
      }
    }
    if (journal_pushed_) detail::journal_pop_span();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t capture_id_ = 0;
  std::uint64_t capture_parent_ = 0;
  bool traced_ = false;
  bool captured_ = false;
  bool journal_pushed_ = false;
};

/// Label this thread's lane in the exported trace (e.g. "worker-2").
void name_this_thread(const std::string& name);

/// Copy of every recorded event (live buffers + exited threads),
/// sorted by start time.  See the export caveat above.
std::vector<TraceEvent> collect_trace_events();

/// Full Chrome trace-event JSON document: matched B/E pairs per span,
/// one `tid` lane per recording thread, thread-name metadata events,
/// timestamps in microseconds relative to the first span.
std::string chrome_trace_json();

/// Drop all recorded events and thread names (tests).
void reset_trace();

}  // namespace socet::obs

#define SOCET_OBS_CONCAT2(a, b) a##b
#define SOCET_OBS_CONCAT(a, b) SOCET_OBS_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
#define SOCET_SPAN(name) \
  ::socet::obs::Span SOCET_OBS_CONCAT(socet_obs_span_, __LINE__)(name)
