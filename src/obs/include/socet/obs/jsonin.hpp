// Minimal JSON reader.
//
// The obs layer *emits* JSON everywhere (reports, traces, BENCH lines);
// the bench harness and the schema tests need to read it back.  This is
// a small recursive-descent parser for that closed loop: full JSON
// value model (null, bool, number, string, array, object), insertion-
// ordered objects, UTF-8 passed through verbatim, `\uXXXX` decoded for
// the escapes our emitter produces.  Not a general-purpose library —
// no streaming, no 64-bit-exact integers beyond double precision, and
// container nesting is capped (~96 levels) so pathological inputs are
// rejected instead of overflowing the parser's stack.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socet::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::vector<std::pair<std::string, JsonValue>> object_value;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : object_value) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] double number_or(double fallback) const {
    return is_number() ? number_value : fallback;
  }
  [[nodiscard]] bool bool_or(bool fallback) const {
    return is_bool() ? bool_value : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    return is_string() ? string_value : std::move(fallback);
  }
};

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  On failure returns false and, when
/// `error` is non-null, a one-line description with the byte offset.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace socet::obs
