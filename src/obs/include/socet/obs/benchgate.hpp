// Bench-trajectory bookkeeping and the regression gate.
//
// Every bench binary emits one greppable `BENCH_<name>.json {...}`
// stderr line (bench/report.hpp).  This module is the consuming side,
// shared by `tools/socet_bench` and the tests: parse those lines,
// summarize repeated runs (min / median / IQR — median+IQR because
// wall-clock noise is one-sided), render per-bench trajectory files
// (`BENCH_<name>.json` at the repo root, one appended point per
// harness run), and compare medians against `bench/baseline.json`
// with a noise-adjusted tolerance.  Schemas: docs/BENCHMARKS.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socet::obs::bench {

/// One parsed `BENCH_<name>.json` stderr line.
struct BenchLine {
  std::string name;
  bool ok = false;
  bool skipped = false;          ///< gate auto-skip (e.g. too few CPUs)
  double wall_ms = 0;
  std::vector<std::pair<std::string, double>> extra;  ///< numeric extras
};

/// Find and parse the first BENCH_ line in a stderr capture.  A `null`
/// or missing `wall_ms` (the emitter writes null for non-finite
/// values) is a hard parse error: a bench whose clock broke must not
/// become a trajectory point.
bool parse_bench_line(std::string_view stderr_text, BenchLine* out,
                      std::string* error = nullptr);

/// Order statistics over the repeats of one bench.
struct RepeatStats {
  std::size_t n = 0;
  double min = 0;
  double median = 0;
  double q1 = 0;
  double q3 = 0;
  [[nodiscard]] double iqr() const { return q3 - q1; }
};

/// Min/median/quartiles of `samples` (linear interpolation between
/// order statistics; empty input yields all zeros).
RepeatStats summarize_repeats(std::vector<double> samples);

/// One bench aggregated over its repeats — the unit the trajectory
/// files and the gate consume.
struct RunRecord {
  std::string name;
  bool ok = false;
  bool skipped = false;
  RepeatStats wall_ms;
  std::int64_t max_rss_kb = 0;   ///< max over repeats (child rusage)
  double utime_ms = 0;           ///< median over repeats
  double stime_ms = 0;
  std::vector<std::pair<std::string, double>> extra;  ///< last repeat's
};

/// Append `record` as a new point in a `socet-bench-trajectory-v1`
/// document.  `existing_text` is the current file content ("" or
/// unparseable restarts the trajectory).  `label` tags the point
/// (e.g. a git SHA); empty is fine.
std::string trajectory_json(std::string_view existing_text,
                            const RunRecord& record,
                            const std::string& label);

/// Median wall time of the newest comparable (non-skipped, ok) point
/// in a `socet-bench-trajectory-v1` document.  Returns false when the
/// text is empty/unparseable or no such point exists — the gate then
/// shows "-" in its delta-vs-previous column instead of a bogus zero.
bool trajectory_last_median(std::string_view text, double* median_ms);

/// `bench/baseline.json`: bench name -> reference median wall_ms.
struct Baseline {
  std::map<std::string, double> wall_ms;
};

bool parse_baseline(std::string_view text, Baseline* out,
                    std::string* error = nullptr);

/// Render a baseline from measured medians (skipped benches excluded).
std::string baseline_json(const std::vector<RunRecord>& records);

/// Gate verdict for one bench.
struct CheckOutcome {
  enum class Verdict {
    kPass,
    kRegression,       ///< median beyond the noise-adjusted limit
    kFailed,           ///< the bench itself reported ok=false
    kSkipped,          ///< bench skipped its gate; not comparable
    kNoBaseline,       ///< bench ran but baseline has no entry
  };
  std::string name;
  Verdict verdict = Verdict::kPass;
  double baseline_ms = 0;
  double measured_ms = 0;   ///< median
  double limit_ms = 0;      ///< baseline + margin + min(IQR, margin)
  // The limit's two ingredients, surfaced so gate output can say *how
  // much* slack each bench actually got (pct margin vs IQR noise).
  double margin_ms = 0;         ///< baseline * tolerance_pct / 100
  double iqr_allowance_ms = 0;  ///< min(IQR(measured), margin)
};

/// Compare measured medians against the baseline.  With
/// `margin = baseline * tolerance_pct / 100`, the limit is
/// `baseline + margin + min(IQR(measured), margin)` — the IQR term
/// absorbs run-to-run noise so a jittery-but-unchanged bench does not
/// trip the gate, while its cap keeps noise from ever hiding a real
/// 2x slowdown.
std::vector<CheckOutcome> check_against_baseline(
    const std::vector<RunRecord>& records, const Baseline& baseline,
    double tolerance_pct);

/// True when any outcome is kRegression or kFailed.
bool has_regression(const std::vector<CheckOutcome>& outcomes);

}  // namespace socet::obs::bench
