// Provenance queries over a recorded decision journal.
//
// `socet explain` loads a `socet-journal-v1` JSONL document (written by
// `--journal FILE`, format in docs/FORMATS.md §5) and answers "why"
// questions by replaying and filtering its events:
//
//   socet explain mux DISPLAY     --journal run.jsonl
//   socet explain version CPU     --journal run.jsonl
//   socet explain route CPU       --journal run.jsonl
//   socet explain reject CPU 3    --journal run.jsonl
//
// Each query returns a human-readable report (one headline, the
// matching events in sequence order, and a short summary); queries
// never fail on an empty match — they say so, because "no events"
// is itself the answer (e.g. no mux was ever inserted).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "socet/obs/jsonin.hpp"

namespace socet::obs {

/// A loaded journal: every event line, parsed, in file order.
struct JournalDoc {
  std::vector<JsonValue> events;
};

/// Parse a journal document.  The first non-empty line must carry
/// `"schema":"socet-journal-v1"`; every following non-empty line must
/// be a JSON object with a `"type"` member.  On failure returns false
/// and, when `error` is non-null, a one-line description.
bool load_journal(std::string_view text, JournalDoc* out,
                  std::string* error = nullptr);

/// Why were test muxes inserted?  Matches `transparency/mux` (inside a
/// core version) and `ccg/mux` (system-level fallback) events whose
/// core, port or pair mentions `target`; empty `target` matches all.
std::string explain_mux(const JournalDoc& doc, const std::string& target);

/// How was `core`'s transparency version menu built?  Replays
/// `transparency/path` / `transparency/mux` events: which edge class
/// (HSCAN vs existing) each terminal settled on, where reuse forced
/// serialization, where a mux was the only way out.
std::string explain_version(const JournalDoc& doc, const std::string& core);

/// How was `core`'s test-set routed across the CCG?  Replays
/// `ccg/route` / `ccg/mux` / `soc/core_planned` events: chosen paths,
/// per-route reservation shifts, and the resulting period/flush/TAT.
std::string explain_route(const JournalDoc& doc, const std::string& core);

/// Why did the optimizer not move `core` to `version`?  Matches
/// `opt/propose` rejections and `opt/reject_final` events; `version`
/// matches the version name ("Version 3"), its index ("3"), or is
/// empty to show every rejected move for the core.
std::string explain_reject(const JournalDoc& doc, const std::string& core,
                           const std::string& version);

}  // namespace socet::obs
