// Prometheus-compatible metrics exposition.
//
// Renders the process-wide metrics registry (metrics.hpp) as the
// Prometheus text format, for a live daemon to serve over HTTP
// (`socet serve --metrics-port`, src/service/httpd.hpp) or over the
// framed protocol (`metrics` verb).  Layout:
//
//   - counters   -> `socet_<name>_total` (counter)
//   - gauges     -> `socet_<name>` (gauge)
//   - histograms -> `socet_<name>{quantile="0.5|0.9|0.99"}` summaries
//                   plus `_sum` / `_count`
//   - rolling windows (Registry::window_delta over 1m/5m/15m) ->
//     `socet_window_<name>{window="1m",...}` gauge families plus
//     `socet_window_covered_seconds{window="..."}`, so a long-running
//     daemon reports tail latency over the recent past, not since boot
//
// Metric names are sanitized with prometheus_name (docs/OBSERVABILITY.md
// "Live daemon telemetry" documents the full exposition).  Window
// families only appear once the ring has at least one slot — run a
// WindowTicker (below) to keep it fed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace socet::obs {

/// `<stage>/<quantity>` -> `stage_quantity`: every byte outside
/// [a-zA-Z0-9_] becomes '_' (a leading digit gains a '_' prefix).
std::string prometheus_name(std::string_view name);

/// One rolling window rendered by prometheus_text.
struct ExpoWindow {
  const char* label;  ///< `window` label value, e.g. "1m"
  double seconds;     ///< lookback passed to Registry::window_delta
};

/// The default 1m/5m/15m ladder.
inline constexpr ExpoWindow kExpoWindows[] = {
    {"1m", 60.0}, {"5m", 300.0}, {"15m", 900.0}};

/// Render the whole registry (plus the rolling windows) as Prometheus
/// text.  Safe to call from any thread at any time; concurrent metric
/// mutation only skews individual samples, never the format.
std::string prometheus_text();

/// Background thread that calls Registry::window_tick() on a fixed
/// interval, keeping the window ring fed while the daemon runs.  One
/// tick fires immediately on start() so the ring always has a baseline.
class WindowTicker {
 public:
  WindowTicker() = default;
  ~WindowTicker();
  WindowTicker(const WindowTicker&) = delete;
  WindowTicker& operator=(const WindowTicker&) = delete;

  void start(std::chrono::milliseconds interval);
  void stop();  ///< idempotent; joins the thread
  [[nodiscard]] bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace socet::obs
