// Sampling CPU profiler.
//
// A SIGPROF/ITIMER_PROF-driven wall-of-CPU-time profiler: the kernel
// delivers SIGPROF to whichever thread is burning CPU, the handler
// captures that thread's stack with `backtrace` into a preallocated
// lock-free sample buffer, and symbolization (`dladdr` + demangling)
// happens once at stop time, never in the signal path.  Output is the
// folded-stacks format consumed by flamegraph tooling
// (`outer;inner;leaf 42` — one line per unique stack) plus an
// aggregated top-functions table for quick terminal triage.
//
// Like the metrics and trace collectors, the profiler is off by
// default: until `Sampler::start` runs, no signal handler is installed
// and no timer is armed, so an unprofiled run is bit-for-bit the same
// process it always was.  The CLI exposes it as `--profile FILE` on
// every command (folded stacks to FILE, top-functions to stderr;
// stdout is never touched).
#pragma once

#include <cstddef>
#include <string>

namespace socet::obs {

struct SamplerOptions {
  /// Sampling period in CPU microseconds (ITIMER_PROF).  A prime-ish
  /// default avoids lockstep with millisecond-periodic workloads.
  unsigned interval_us = 1009;
  /// Preallocated sample capacity; samples past it are counted as
  /// dropped rather than blocking or allocating in the handler.
  std::size_t max_samples = 1 << 16;
};

/// True when the platform supports profiling (Linux: SIGPROF +
/// backtrace + dladdr).  On unsupported platforms `start` returns
/// false and everything else is a no-op.
bool sampler_supported();

/// Process-wide sampler (SIGPROF has process granularity, so there is
/// exactly one).  All control calls must come from the same thread and
/// never from a signal handler.
class Sampler {
 public:
  /// Install the SIGPROF handler and arm ITIMER_PROF.  Returns false
  /// if already running or unsupported.  Existing samples from a
  /// previous start/stop cycle are kept (accumulate) until `reset`.
  static bool start(const SamplerOptions& options = {});
  /// Disarm the timer and restore the previous SIGPROF disposition.
  static void stop();
  static bool running();

  /// Captured (not dropped) samples so far.
  static std::size_t sample_count();
  /// Samples lost to a full buffer.
  static std::size_t dropped_count();

  /// Folded-stacks text: `frame;frame;leaf count\n` per unique stack,
  /// outermost frame first, sorted by count descending.  Call after
  /// `stop` (symbolization is not signal-safe and not cheap).
  static std::string folded_stacks();
  /// util::Table of the hottest functions: self samples (stack leaf)
  /// and inclusive samples (appears anywhere in the stack).
  static std::string top_functions_table(std::size_t limit = 20);

  /// Drop all captured samples (sampler must be stopped).
  static void reset();
};

/// RAII start/stop for scoping a profile to a block (the CLI wraps the
/// whole command in one).
class ScopedSampler {
 public:
  explicit ScopedSampler(const SamplerOptions& options = {})
      : started_(Sampler::start(options)) {}
  ~ScopedSampler() {
    if (started_) Sampler::stop();
  }
  ScopedSampler(const ScopedSampler&) = delete;
  ScopedSampler& operator=(const ScopedSampler&) = delete;

  [[nodiscard]] bool started() const { return started_; }

 private:
  bool started_ = false;
};

}  // namespace socet::obs
