// Cross-layer metrics registry.
//
// A process-wide registry of named counters, gauges, and fixed-bucket
// histograms, all backed by atomics so hot paths on any thread can
// record without locking.  Collection is off by default: every mutation
// macro first reads one relaxed atomic flag, so an uninstrumented run
// pays a single predictable branch per site and nothing else — the
// planner's stdout (and the service's byte-identical-across-threads
// guarantee) is never affected because metrics only ever render to
// stderr or side files.
//
// Hot-path usage (the static reference caches the registry lookup):
//
//   SOCET_COUNT("ccg/relaxations");
//   SOCET_COUNT_N("faultsim/faults_dropped", dropped);
//   SOCET_HISTOGRAM("service/wall_us", wall_us);
//   SOCET_GAUGE_MAX("service/queue_depth", depth);
//
// Naming convention: `<stage>/<quantity>`, lower_snake quantity, with
// the stage matching the span prefixes in trace.hpp (docs/OBSERVABILITY.md
// lists every name).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace socet::obs {

/// Global collection switch shared by every metric site.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / running-maximum value (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if `v` is larger (monotone high-water mark).
  void record_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integers with power-of-two
/// bucket bounds (1, 2, 4, … 2^62, +overflow).  Quantiles are estimated
/// by rank-walking the buckets with linear interpolation inside the
/// landing bucket, then clamped to the exact observed [min, max] — so an
/// empty histogram reports 0 and a single sample reports itself exactly.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;  ///< last bucket = overflow

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const;
  [[nodiscard]] double mean() const;
  /// q in [0, 1]; q=0.5 is the median.  0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `b` (2^b; overflow bucket = UINT64_MAX).
  static std::uint64_t bucket_bound(std::size_t b);

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Quantile estimate over a raw power-of-two bucket array laid out like
/// Histogram's (`buckets` must have Histogram::kBuckets entries).  The
/// rank walk interpolates linearly inside the landing bucket.  When
/// `observed` is true, `observed_min`/`observed_max` are the exact
/// sample extremes: the first occupied bucket's floor and the final
/// occupied bucket's ceiling interpolate against them (a latency
/// histogram whose top bucket spans [2^19, 2^20] but whose slowest
/// sample was 600k reports p99 inside [2^19, 600k], not pegged at the
/// bucket bound), and the estimate is clamped to [min, max].  When
/// false (rolling-window deltas, where extremes are unknown) only the
/// bucket bounds are used and the overflow bucket reports its floor.
double bucket_quantile(const std::uint64_t* buckets, std::uint64_t count,
                       double q, bool observed, std::uint64_t observed_min,
                       std::uint64_t observed_max);

/// Point-in-time copy of every registered metric, in registration-stable
/// (sorted by name) order.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Total number of named metrics in the snapshot.
  [[nodiscard]] std::size_t size() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Aggregation of every registered counter/histogram over a trailing
/// time window, computed as live-minus-baseline between the current
/// values and a ring snapshot (see Registry::window_tick).  A counter's
/// `delta` divided by `covered_seconds` is its rate; histogram
/// quantiles are estimated from the bucket deltas (bucket_quantile with
/// observed=false — exact extremes are not tracked per window).
struct WindowStats {
  struct CounterDelta {
    std::string name;
    std::uint64_t delta = 0;
  };
  struct HistogramDelta {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  bool valid = false;          ///< false until the first window_tick()
  double covered_seconds = 0;  ///< actual span (a young ring covers less)
  std::vector<CounterDelta> counters;
  std::vector<HistogramDelta> histograms;
};

/// Process-wide name -> metric table.  Lookup takes a mutex; handles are
/// stable for the process lifetime, so call sites cache the reference in
/// a function-local static (the SOCET_* macros below do exactly that).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// util::Table rendering of the snapshot (for `--metrics` on stderr).
  [[nodiscard]] std::string table_text() const;
  /// JSON object rendering (embedded in the run report).
  [[nodiscard]] std::string json() const;

  /// Rolling windows: window_tick() captures a cumulative snapshot of
  /// every counter/histogram into a bounded ring (call it on a fixed
  /// interval — expo.hpp's WindowTicker does).  window_delta() picks the
  /// newest ring slot at least `lookback_seconds` old (or the oldest
  /// available when the ring is younger than the window) and returns the
  /// live-minus-baseline deltas, so a week-old daemon reports latency
  /// quantiles and hit-rates over the last 1m/5m/15m instead of
  /// since-boot averages.
  void window_tick();
  [[nodiscard]] WindowStats window_delta(double lookback_seconds) const;
  /// Bound the ring (default 128 slots; oldest slots are dropped first).
  void window_configure(std::size_t max_slots);
  [[nodiscard]] std::size_t window_slot_count() const;

  /// Zero every metric and drop the window ring (tests; the registry
  /// itself never shrinks).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace socet::obs

// Mutation macros: one relaxed load when collection is off; a cached
// registry reference plus one atomic RMW when on.
#define SOCET_COUNT(name) SOCET_COUNT_N(name, 1)
#define SOCET_COUNT_N(name, n)                                    \
  do {                                                            \
    if (::socet::obs::metrics_enabled()) {                        \
      static ::socet::obs::Counter& socet_obs_c =                 \
          ::socet::obs::counter(name);                            \
      socet_obs_c.add(static_cast<std::uint64_t>(n));             \
    }                                                             \
  } while (0)
#define SOCET_HISTOGRAM(name, v)                                  \
  do {                                                            \
    if (::socet::obs::metrics_enabled()) {                        \
      static ::socet::obs::Histogram& socet_obs_h =               \
          ::socet::obs::histogram(name);                          \
      socet_obs_h.record(static_cast<std::uint64_t>(v));          \
    }                                                             \
  } while (0)
#define SOCET_GAUGE_SET(name, v)                                  \
  do {                                                            \
    if (::socet::obs::metrics_enabled()) {                        \
      static ::socet::obs::Gauge& socet_obs_g =                   \
          ::socet::obs::gauge(name);                              \
      socet_obs_g.set(static_cast<std::int64_t>(v));              \
    }                                                             \
  } while (0)
#define SOCET_GAUGE_MAX(name, v)                                  \
  do {                                                            \
    if (::socet::obs::metrics_enabled()) {                        \
      static ::socet::obs::Gauge& socet_obs_g =                   \
          ::socet::obs::gauge(name);                              \
      socet_obs_g.record_max(static_cast<std::int64_t>(v));       \
    }                                                             \
  } while (0)
