// Decision journal + flight recorder.
//
//   SOCET_EVENT("ccg/route", {"core", name}, {"shift", shift}, ...);
//
// A structured, append-only record of *why* the pipeline did what it
// did: which edge class the transparency search settled on, which CCG
// route the reservation-aware Dijkstra picked (and how far departures
// slid), which optimizer moves were proposed and why they were
// rejected, how parallel sessions were colored, and whether a service
// job hit the plan cache.  Metrics/tracing (metrics.hpp, trace.hpp)
// answer "how long"; the journal answers "why this plan".
//
// Off by default: when disabled, SOCET_EVENT is a single relaxed
// atomic load and stdout stays byte-identical.  When enabled, each
// event is rendered at record time into one self-contained JSONL line
//
//   {"seq":12,"ts_us":84.2,"tid":3,"corr":"job-2",
//    "span":"service/job","type":"service/job","cache":"hit",...}
//
// and delivered to the active sinks:
//
//   * memory sink (`journal_start_memory`): unbounded per-thread
//     buffers, merged by `journal_jsonl()` into a `socet-journal-v1`
//     document (docs/FORMATS.md §5) for `--journal FILE` and the
//     `socet explain` queries (explain.hpp);
//   * flight recorder (`journal_start_flight`): a fixed-capacity
//     lock-free ring of pre-rendered lines.  A fatal-signal handler
//     dumps the last N events plus every thread's active span stack to
//     stderr using only async-signal-safe calls, so a crashing run
//     still tells you what it was deciding.
//
// Correlation: `JournalScope` tags all events recorded by the current
// thread inside its lifetime (service workers use "job-<n>"); the
// innermost SOCET_SPAN name is captured automatically.
//
// Export (`journal_jsonl`) has the same caveat as trace export: call
// it only when no instrumented thread is concurrently recording.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>

namespace socet::obs {

/// Global journal switch (independent of metrics/trace switches).
/// True while any sink is active.
bool journal_enabled();

/// Number of events recorded since start/reset (either sink).
std::uint64_t journal_event_count();

/// Enable the unbounded in-memory sink (for `--journal FILE`).
void journal_start_memory();

/// Enable the fixed-capacity ring sink.  `capacity` is clamped to
/// [16, 65536].  When `install_crash_handler` is set, fatal signals
/// (SEGV/ABRT/BUS/FPE/ILL) dump the ring and active spans to stderr
/// before re-raising with the default disposition.
void journal_start_flight(std::size_t capacity = 256,
                          bool install_crash_handler = true);

/// Live tap sink: called once per event, at record time, on the
/// recording thread, with the event type, the thread's correlation id
/// ("" if none) and the fully rendered JSONL line.  The daemon's
/// `tail` verb streams these to remote watchers.  One tap per process
/// (the last call wins); an empty function uninstalls it.  The tap
/// alone makes `journal_enabled()` true, so keep the callback cheap
/// and non-blocking — it runs inside every instrumented code path.
using JournalTapFn =
    std::function<void(const char* type, const char* corr,
                       const std::string& line)>;
void journal_set_tap(JournalTapFn fn);

/// Stop recording (buffers are kept for export).
void journal_stop();

/// Stop recording and drop all buffered events, correlation state and
/// sequence numbers (tests).
void journal_reset();

/// The full journal document: a `{"schema":"socet-journal-v1",...}`
/// header line followed by every memory-sink event in sequence order,
/// one JSON object per line, trailing newline.
std::string journal_jsonl();

/// Write the flight-recorder ring (oldest first) and the active span
/// stack of every live thread to `fd` as JSONL.  Async-signal-safe.
void journal_dump_flight(int fd);

/// One typed key/value pair of an event.  The value is rendered to
/// JSON at construction; construction only happens inside an enabled
/// SOCET_EVENT, so the disabled path never touches it.
class JournalField {
 public:
  JournalField(const char* key, const char* value);
  JournalField(const char* key, const std::string& value);
  JournalField(const char* key, bool value);
  JournalField(const char* key, double value);
  JournalField(const char* key, int value);
  JournalField(const char* key, long value);
  JournalField(const char* key, long long value);
  JournalField(const char* key, unsigned value);
  JournalField(const char* key, unsigned long value);
  JournalField(const char* key, unsigned long long value);

  const char* key() const { return key_; }
  const std::string& json() const { return json_; }

 private:
  const char* key_;
  std::string json_;  ///< pre-rendered JSON value ("\"hit\"", "42", ...)
};

/// Record one event.  `type` must be a `<stage>/<what>` string literal
/// (same convention as span names).  Prefer the SOCET_EVENT macro.
void journal_event(const char* type,
                   std::initializer_list<JournalField> fields);

/// RAII correlation tag: events recorded by this thread while the
/// scope is alive carry `"corr":"<id>"`.  Scopes nest; the innermost
/// wins and the previous id is restored on destruction.
class JournalScope {
 public:
  explicit JournalScope(const std::string& id);
  ~JournalScope();
  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

 private:
  bool active_ = false;
  std::string previous_;
};

namespace detail {
/// Span-stack hooks driven by obs::Span (trace.hpp).  `name` must have
/// static storage duration.
void journal_push_span(const char* name);
void journal_pop_span();
}  // namespace detail

}  // namespace socet::obs

/// Record a decision event; no-op (one relaxed load) when the journal
/// is disabled.  Fields are brace-lists: SOCET_EVENT("t", {"k", v}).
#define SOCET_EVENT(type, ...)                                     \
  do {                                                             \
    if (::socet::obs::journal_enabled()) {                         \
      ::socet::obs::journal_event((type), {__VA_ARGS__});          \
    }                                                              \
  } while (0)
