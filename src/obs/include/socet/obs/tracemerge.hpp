// Cross-process trace assembly for `batch --connect --trace` and
// `socet trace-merge`.
//
// The client and the daemon run on the same machine or not — either
// way their steady clocks have unrelated epochs, so daemon-side span
// timestamps must be re-based onto the client's timeline before the
// two halves can share one Chrome trace.  The client performs a small
// clock handshake (a few `clock` probes over the already-open
// connection) and `estimate_clock_offset_ns` turns the probe samples
// into an offset using the classic min-RTT midpoint estimate: the
// sample with the smallest round trip bounds the server timestamp
// tightest, and the midpoint of its send/receive pair is the best
// guess for when the server read its clock.
//
// `merged_chrome_trace` then renders ONE trace-event document:
//
//   pid 1  socet client   submit lanes (one X slice per in-flight job)
//   pid 2  socet serve    queue/respond lanes + one lane per worker
//
// Daemon slices carry `args.trace` / `args.span` / `args.parent` (hex
// span ids) so tooling can verify the parent chain, and flow events
// (`ph:"s"`/`"f"`) draw the client→daemon handoff in Perfetto.
//
// Span timestamps cross the wire as *decimal strings*, not JSON
// numbers: steady-clock nanosecond readings can exceed the 2^53
// integer range of a double, and only differences are small.  The
// merged document's `ts`/`dur` are relative microseconds and safe as
// numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "socet/obs/trace.hpp"

namespace socet::obs {

/// One `clock` probe: client send/receive times (client clock) and the
/// server's reported time (daemon clock), all in nanoseconds.
struct ClockSample {
  std::uint64_t send_ns = 0;
  std::uint64_t recv_ns = 0;
  std::uint64_t server_ns = 0;
};

/// Min-RTT midpoint estimate of (daemon clock − client clock) in
/// nanoseconds: daemon_ns ≈ client_ns + offset.  Samples with
/// recv < send are ignored; returns 0 when no sample is usable.
std::int64_t estimate_clock_offset_ns(const std::vector<ClockSample>& samples);

/// Serialize span records for the serve `spans` verb: one JSON object
/// per line (ids as hex strings, timestamps as decimal-string ns).
std::string remote_spans_jsonl(const std::vector<SpanRecord>& spans);

/// Parse `remote_spans_jsonl` output.  Unknown fields are ignored;
/// a malformed line fails the whole parse with a line number.
bool parse_remote_spans_jsonl(std::string_view text,
                              std::vector<SpanRecord>* out,
                              std::string* error = nullptr);

/// Everything needed to assemble one cross-process trace.
struct MergeInput {
  std::uint64_t trace_id = 0;
  std::int64_t clock_offset_ns = 0;      ///< daemon = client + offset
  std::vector<SpanRecord> client_spans;  ///< client clock (submit spans)
  std::vector<SpanRecord> daemon_spans;  ///< daemon clock
};

/// One Chrome trace-event JSON document with client and daemon spans
/// on aligned timelines (see the file comment for the layout).
std::string merged_chrome_trace(const MergeInput& input);

/// Offline tool behind `socet trace-merge`: concatenate two Chrome
/// trace documents into one, remapping the overlay's pids past the
/// base's and shifting overlay timestamps by `overlay_offset_us`.
/// Overlay span/flow ids that collide with base ids (both processes
/// seed new_span_id from the clock, so reuse is possible) are remapped
/// to fresh values in first-appearance order rather than silently
/// merging two unrelated spans into one tree.
bool merge_chrome_trace_files(const std::string& base_json,
                              const std::string& overlay_json,
                              double overlay_offset_us, std::string* out,
                              std::string* error = nullptr);

}  // namespace socet::obs
