// Per-stage and whole-run resource accounting.
//
// Answers "what did this run cost" beyond wall time: peak RSS,
// minor/major page faults, and user/system CPU time from `getrusage`,
// plus optional hardware counters (cycles, instructions, cache misses)
// via `perf_event_open` — opened once per run with `inherit` set so
// worker threads spawned later are counted too, and degrading
// gracefully to "unavailable" when the kernel or container says
// EPERM/ENOSYS/EACCES.
//
// Stage accounting mirrors the span convention: a `ResourceScope`
// (macro `SOCET_RESOURCE_SCOPE`) measures the calling thread's rusage
// delta across a block and folds it into a process-wide table keyed by
// the same `<stage>/<what>` names spans use.  Like every other obs
// collector it is off by default (one relaxed load per site) and only
// renders to side files: the run report embeds the whole thing as an
// additive `resources` block (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace socet::obs {

/// Global switch for stage scopes.  Turning it on the first time also
/// starts the whole-run hardware counters (if the kernel allows).
bool resources_enabled();
void set_resources_enabled(bool enabled);

/// CPU time and paging deltas (microseconds / counts).
struct RusageDelta {
  std::int64_t utime_us = 0;
  std::int64_t stime_us = 0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
};

/// Whole-run absolutes (since process start).
struct RunResources {
  std::int64_t peak_rss_kb = 0;
  RusageDelta usage;
  bool hw_available = false;
  std::uint64_t hw_cycles = 0;
  std::uint64_t hw_instructions = 0;
  std::uint64_t hw_cache_misses = 0;
};

/// RUSAGE_SELF snapshot plus the run hardware counters (zeros and
/// `hw_available == false` when perf events could not be opened).
RunResources run_resources();

/// Calling thread's cumulative rusage (RUSAGE_THREAD on Linux,
/// RUSAGE_SELF elsewhere) — monotone per thread, used for scope deltas.
RusageDelta thread_usage();

/// Accumulated cost of one named scope across all its executions.
struct StageUsage {
  std::string name;
  std::uint64_t count = 0;
  RusageDelta usage;
};

/// Snapshot of the per-stage table, sorted by name.
std::vector<StageUsage> stage_resources();

/// The report's `resources` block:
///   {"run": {peak_rss_kb, utime_us, stime_us, minor_faults,
///            major_faults, "hw": {available, cycles, instructions,
///            cache_misses}},
///    "stages": {<name>: {count, utime_us, stime_us, minor_faults,
///               major_faults}}}
std::string resources_json();

/// Clear the stage table (tests).
void reset_resources();

/// RAII rusage delta for one block on the calling thread.  `name` must
/// have static storage duration (the macro passes literals).
class ResourceScope {
 public:
  explicit ResourceScope(const char* name) {
    if (resources_enabled()) {
      name_ = name;
      start_ = thread_usage();
    }
  }
  ~ResourceScope();
  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

 private:
  const char* name_ = nullptr;
  RusageDelta start_{};
};

}  // namespace socet::obs

#define SOCET_OBS_RES_CONCAT2(a, b) a##b
#define SOCET_OBS_RES_CONCAT(a, b) SOCET_OBS_RES_CONCAT2(a, b)
/// Account the rest of the enclosing scope to `name` in the resources
/// table (one relaxed load when accounting is off).
#define SOCET_RESOURCE_SCOPE(name)            \
  ::socet::obs::ResourceScope SOCET_OBS_RES_CONCAT(socet_obs_res_, \
                                                   __LINE__)(name)
