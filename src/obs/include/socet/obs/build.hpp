// Build identity baked in at configure time.
//
// The daemon exposes these through the Prometheus exposition as
//
//   socet_build_info{version="0.9.0",git="abc1234"} 1
//   socet_start_time_seconds 1.7e9
//
// so dashboards can detect restarts and version skew across a fleet.
// Values come from the SOCET_VERSION / SOCET_GIT_SHA compile
// definitions (src/obs/CMakeLists.txt runs `git rev-parse` at
// configure time); both fall back to "unknown" outside a git checkout.
#pragma once

namespace socet::obs {

/// Project version string (CMake project VERSION).
const char* build_version();

/// Short git commit hash of the checkout that configured the build.
const char* build_git();

}  // namespace socet::obs
