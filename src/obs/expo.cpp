#include "socet/obs/expo.hpp"

#include <cctype>
#include <cstdio>

#include "socet/obs/metrics.hpp"

namespace socet::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_type(std::string& out, const std::string& family,
                 const char* type) {
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

void append_sample(std::string& out, const std::string& family,
                   const std::string& labels, const std::string& value) {
  out += family;
  out += labels;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text() {
  Registry& registry = Registry::instance();
  const MetricsSnapshot snap = registry.snapshot();
  std::string out;

  for (const auto& c : snap.counters) {
    const std::string family = "socet_" + prometheus_name(c.name) + "_total";
    append_type(out, family, "counter");
    append_sample(out, family, "", std::to_string(c.value));
  }
  for (const auto& g : snap.gauges) {
    const std::string family = "socet_" + prometheus_name(g.name);
    append_type(out, family, "gauge");
    append_sample(out, family, "", std::to_string(g.value));
  }
  for (const auto& h : snap.histograms) {
    const std::string family = "socet_" + prometheus_name(h.name);
    append_type(out, family, "summary");
    append_sample(out, family, "{quantile=\"0.5\"}", fmt_double(h.p50));
    append_sample(out, family, "{quantile=\"0.9\"}", fmt_double(h.p90));
    append_sample(out, family, "{quantile=\"0.99\"}", fmt_double(h.p99));
    append_sample(out, family + "_sum", "", std::to_string(h.sum));
    append_sample(out, family + "_count", "", std::to_string(h.count));
  }

  // Rolling windows: compute all ladder rungs up front, then render each
  // family once with one sample per {window[,quantile]} label set (a
  // Prometheus family may appear only once per exposition).  The delta
  // lists come from the same sorted registry maps, so the three rungs
  // are index-aligned.
  WindowStats windows[std::size(kExpoWindows)];
  bool any_valid = false;
  for (std::size_t w = 0; w < std::size(kExpoWindows); ++w) {
    windows[w] = registry.window_delta(kExpoWindows[w].seconds);
    any_valid = any_valid || windows[w].valid;
  }
  if (!any_valid) return out;

  {
    const std::string family = "socet_window_covered_seconds";
    append_type(out, family, "gauge");
    for (std::size_t w = 0; w < std::size(kExpoWindows); ++w) {
      append_sample(out, family,
                    std::string("{window=\"") + kExpoWindows[w].label + "\"}",
                    fmt_double(windows[w].covered_seconds));
    }
  }
  for (std::size_t c = 0; c < windows[0].counters.size(); ++c) {
    const std::string family =
        "socet_window_" + prometheus_name(windows[0].counters[c].name);
    append_type(out, family, "gauge");
    for (std::size_t w = 0; w < std::size(kExpoWindows); ++w) {
      append_sample(out, family,
                    std::string("{window=\"") + kExpoWindows[w].label + "\"}",
                    std::to_string(windows[w].counters[c].delta));
    }
  }
  for (std::size_t h = 0; h < windows[0].histograms.size(); ++h) {
    const std::string family =
        "socet_window_" + prometheus_name(windows[0].histograms[h].name);
    append_type(out, family, "gauge");
    for (std::size_t w = 0; w < std::size(kExpoWindows); ++w) {
      const WindowStats::HistogramDelta& d = windows[w].histograms[h];
      const std::string prefix =
          std::string("{window=\"") + kExpoWindows[w].label + "\",quantile=\"";
      append_sample(out, family, prefix + "0.5\"}", fmt_double(d.p50));
      append_sample(out, family, prefix + "0.95\"}", fmt_double(d.p95));
      append_sample(out, family, prefix + "0.99\"}", fmt_double(d.p99));
    }
    append_type(out, family + "_count", "gauge");
    for (std::size_t w = 0; w < std::size(kExpoWindows); ++w) {
      append_sample(out, family + "_count",
                    std::string("{window=\"") + kExpoWindows[w].label + "\"}",
                    std::to_string(windows[w].histograms[h].count));
    }
  }
  return out;
}

WindowTicker::~WindowTicker() { stop(); }

void WindowTicker::start(std::chrono::milliseconds interval) {
  stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  // The baseline slot must exist before start() returns: a daemon
  // ticks here before accepting traffic, so the first window delta
  // covers every request it ever serves.
  Registry::instance().window_tick();
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      lock.unlock();
      Registry::instance().window_tick();
      lock.lock();
    }
  });
}

void WindowTicker::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace socet::obs
