#include "socet/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>

#include "socet/obs/report.hpp"
#include "socet/util/table.hpp"

namespace socet::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ------------------------------------------------------------- histogram

void Histogram::record(std::uint64_t v) {
  // Bucket b holds values in (2^(b-1), 2^b]; 0 lands in bucket 0.
  const std::size_t b = std::min<std::size_t>(
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1)),
      kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_bound(std::size_t b) {
  if (b + 1 >= kBuckets) return ~0ull;
  return 1ull << b;
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  return static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  std::uint64_t buckets[kBuckets];
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return bucket_quantile(buckets, count(), q, /*observed=*/true, min(), max());
}

double bucket_quantile(const std::uint64_t* buckets, std::uint64_t count,
                       double q, bool observed, std::uint64_t observed_min,
                       std::uint64_t observed_max) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]; walk buckets until the cumulative count covers
  // it, then interpolate linearly inside the landing bucket.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::size_t first_occupied = Histogram::kBuckets;
  std::size_t last_occupied = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (first_occupied == Histogram::kBuckets) first_occupied = b;
    last_occupied = b;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t here = buckets[b];
    if (here == 0) continue;
    if (static_cast<double>(cumulative + here) >= rank) {
      double lo =
          b == 0 ? 0.0 : static_cast<double>(Histogram::bucket_bound(b - 1));
      double hi = static_cast<double>(Histogram::bucket_bound(b));
      if (observed) {
        // The exact extremes tighten the open-ended edges: the final
        // occupied bucket's ceiling is the observed max (not the bucket
        // bound, which pegs p99 at a power of two or worse — UINT64_MAX
        // for the overflow bucket), and the first occupied bucket's
        // floor is the observed min.
        if (b == last_occupied) hi = static_cast<double>(observed_max);
        if (b == first_occupied) {
          lo = std::min(static_cast<double>(observed_min), hi);
        }
      } else if (b + 1 >= Histogram::kBuckets) {
        hi = lo;  // overflow bucket with unknown max: report its floor
      }
      if (hi < lo) hi = lo;
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(here);
      double estimate = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      if (observed) {
        // Degenerate histograms (single sample, all-equal samples)
        // report exact values.
        estimate = std::clamp(estimate, static_cast<double>(observed_min),
                              static_cast<double>(observed_max));
      }
      return estimate;
    }
    cumulative += here;
  }
  // count said more samples than the buckets hold (racy relaxed reads);
  // answer with the best upper bound we have.
  return observed ? static_cast<double>(observed_max)
                  : static_cast<double>(Histogram::bucket_bound(last_occupied));
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- registry

// std::map keeps iteration sorted by name and never invalidates the
// mapped objects, so handles returned once stay valid forever.
struct Registry::Impl {
  // One cumulative capture of every counter/histogram (window_tick).
  // Slots store cumulative values, not per-interval deltas, so a window
  // delta is just live-minus-baseline regardless of tick cadence.
  struct WindowSlot {
    std::chrono::steady_clock::time_point at;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    struct Hist {
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    };
    std::map<std::string, Hist, std::less<>> histograms;
  };

  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
  std::deque<WindowSlot> window_ring;
  std::size_t window_max_slots = 128;
};

namespace {

// a - b, saturating at 0: a reset() between a tick and a delta query
// must not wrap the difference around.
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : i.counters) {
    snap.counters.push_back({name, counter.value()});
  }
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.push_back({name, gauge.value()});
  }
  for (const auto& [name, histogram] : i.histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = histogram.count();
    h.sum = histogram.sum();
    h.min = histogram.min();
    h.max = histogram.max();
    h.mean = histogram.mean();
    h.p50 = histogram.quantile(0.50);
    h.p90 = histogram.quantile(0.90);
    h.p99 = histogram.quantile(0.99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::string Registry::table_text() const {
  const MetricsSnapshot snap = snapshot();
  util::Table table({"metric", "type", "value"});
  for (const auto& c : snap.counters) {
    table.add_row({c.name, "counter", std::to_string(c.value)});
  }
  for (const auto& g : snap.gauges) {
    table.add_row({g.name, "gauge", std::to_string(g.value)});
  }
  for (const auto& h : snap.histograms) {
    table.add_row({h.name, "histogram",
                   "n=" + std::to_string(h.count) +
                       " mean=" + util::Table::num(h.mean) +
                       " p50=" + util::Table::num(h.p50) +
                       " p90=" + util::Table::num(h.p90) +
                       " p99=" + util::Table::num(h.p99) +
                       " max=" + std::to_string(h.max)});
  }
  return table.to_text();
}

std::string Registry::json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    out += "\"" + json_escape(snap.counters[i].name) +
           "\":" + std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    out += "\"" + json_escape(snap.gauges[i].name) +
           "\":" + std::to_string(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ',';
    out += "\"" + json_escape(h.name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"mean\":" + json_number(h.mean) +
           ",\"p50\":" + json_number(h.p50) +
           ",\"p90\":" + json_number(h.p90) +
           ",\"p99\":" + json_number(h.p99) + "}";
  }
  out += "}}";
  return out;
}

void Registry::window_tick() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  Impl::WindowSlot slot;
  slot.at = std::chrono::steady_clock::now();
  for (const auto& [name, counter] : i.counters) {
    slot.counters.emplace(name, counter.value());
  }
  for (const auto& [name, histogram] : i.histograms) {
    Impl::WindowSlot::Hist h;
    h.count = histogram.count();
    h.sum = histogram.sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] = histogram.bucket_count(b);
    }
    slot.histograms.emplace(name, std::move(h));
  }
  i.window_ring.push_back(std::move(slot));
  while (i.window_ring.size() > i.window_max_slots) i.window_ring.pop_front();
}

WindowStats Registry::window_delta(double lookback_seconds) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  WindowStats stats;
  if (i.window_ring.empty()) return stats;
  const auto now = std::chrono::steady_clock::now();
  // Newest slot at least `lookback_seconds` old; a ring younger than the
  // window falls back to its oldest slot (covered_seconds says so).
  const Impl::WindowSlot* baseline = &i.window_ring.front();
  for (auto it = i.window_ring.rbegin(); it != i.window_ring.rend(); ++it) {
    if (std::chrono::duration<double>(now - it->at).count() >=
        lookback_seconds) {
      baseline = &*it;
      break;
    }
  }
  stats.valid = true;
  stats.covered_seconds =
      std::chrono::duration<double>(now - baseline->at).count();
  for (const auto& [name, counter] : i.counters) {
    const auto it = baseline->counters.find(name);
    const std::uint64_t base =
        it == baseline->counters.end() ? 0 : it->second;
    stats.counters.push_back({name, sat_sub(counter.value(), base)});
  }
  for (const auto& [name, histogram] : i.histograms) {
    WindowStats::HistogramDelta d;
    d.name = name;
    std::uint64_t buckets[Histogram::kBuckets] = {};
    const auto it = baseline->histograms.find(name);
    const Impl::WindowSlot::Hist* base =
        it == baseline->histograms.end() ? nullptr : &it->second;
    d.count = sat_sub(histogram.count(), base ? base->count : 0);
    d.sum = sat_sub(histogram.sum(), base ? base->sum : 0);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      buckets[b] =
          sat_sub(histogram.bucket_count(b), base ? base->buckets[b] : 0);
    }
    d.p50 = bucket_quantile(buckets, d.count, 0.50, /*observed=*/false, 0, 0);
    d.p95 = bucket_quantile(buckets, d.count, 0.95, /*observed=*/false, 0, 0);
    d.p99 = bucket_quantile(buckets, d.count, 0.99, /*observed=*/false, 0, 0);
    stats.histograms.push_back(std::move(d));
  }
  return stats;
}

void Registry::window_configure(std::size_t max_slots) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.window_max_slots = std::max<std::size_t>(1, max_slots);
  while (i.window_ring.size() > i.window_max_slots) i.window_ring.pop_front();
}

std::size_t Registry::window_slot_count() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.window_ring.size();
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter.reset();
  for (auto& [name, gauge] : i.gauges) gauge.reset();
  for (auto& [name, histogram] : i.histograms) histogram.reset();
  i.window_ring.clear();
}

}  // namespace socet::obs
