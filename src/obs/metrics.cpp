#include "socet/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>

#include "socet/obs/report.hpp"
#include "socet/util/table.hpp"

namespace socet::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ------------------------------------------------------------- histogram

void Histogram::record(std::uint64_t v) {
  // Bucket b holds values in (2^(b-1), 2^b]; 0 lands in bucket 0.
  const std::size_t b = std::min<std::size_t>(
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1)),
      kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_bound(std::size_t b) {
  if (b + 1 >= kBuckets) return ~0ull;
  return 1ull << b;
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  return static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, n]; walk buckets until the cumulative count covers it,
  // then interpolate linearly inside the landing bucket.
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t here = buckets_[b].load(std::memory_order_relaxed);
    if (here == 0) continue;
    if (static_cast<double>(cumulative + here) >= rank) {
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(bucket_bound(b - 1));
      const double hi = b + 1 >= kBuckets
                            ? static_cast<double>(max())
                            : static_cast<double>(bucket_bound(b));
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(here);
      const double estimate = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      // Clamp to the exact observed range so degenerate histograms
      // (single sample, all-equal samples) report exact values.
      return std::clamp(estimate, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    cumulative += here;
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- registry

// std::map keeps iteration sorted by name and never invalidates the
// mapped objects, so handles returned once stay valid forever.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : i.counters) {
    snap.counters.push_back({name, counter.value()});
  }
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.push_back({name, gauge.value()});
  }
  for (const auto& [name, histogram] : i.histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = histogram.count();
    h.sum = histogram.sum();
    h.min = histogram.min();
    h.max = histogram.max();
    h.mean = histogram.mean();
    h.p50 = histogram.quantile(0.50);
    h.p90 = histogram.quantile(0.90);
    h.p99 = histogram.quantile(0.99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::string Registry::table_text() const {
  const MetricsSnapshot snap = snapshot();
  util::Table table({"metric", "type", "value"});
  for (const auto& c : snap.counters) {
    table.add_row({c.name, "counter", std::to_string(c.value)});
  }
  for (const auto& g : snap.gauges) {
    table.add_row({g.name, "gauge", std::to_string(g.value)});
  }
  for (const auto& h : snap.histograms) {
    table.add_row({h.name, "histogram",
                   "n=" + std::to_string(h.count) +
                       " mean=" + util::Table::num(h.mean) +
                       " p50=" + util::Table::num(h.p50) +
                       " p90=" + util::Table::num(h.p90) +
                       " p99=" + util::Table::num(h.p99) +
                       " max=" + std::to_string(h.max)});
  }
  return table.to_text();
}

std::string Registry::json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    out += "\"" + json_escape(snap.counters[i].name) +
           "\":" + std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    out += "\"" + json_escape(snap.gauges[i].name) +
           "\":" + std::to_string(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ',';
    out += "\"" + json_escape(h.name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"mean\":" + json_number(h.mean) +
           ",\"p50\":" + json_number(h.p50) +
           ",\"p90\":" + json_number(h.p90) +
           ",\"p99\":" + json_number(h.p99) + "}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter.reset();
  for (auto& [name, gauge] : i.gauges) gauge.reset();
  for (auto& [name, histogram] : i.histograms) histogram.reset();
}

}  // namespace socet::obs
