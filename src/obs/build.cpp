#include "socet/obs/build.hpp"

#ifndef SOCET_VERSION
#define SOCET_VERSION "unknown"
#endif
#ifndef SOCET_GIT_SHA
#define SOCET_GIT_SHA "unknown"
#endif

namespace socet::obs {

const char* build_version() { return SOCET_VERSION; }

const char* build_git() { return SOCET_GIT_SHA; }

}  // namespace socet::obs
