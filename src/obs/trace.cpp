#include "socet/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "socet/obs/report.hpp"

namespace socet::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

/// Events recorded by one thread.  Registered with the sink on first
/// use; the destructor (thread exit) hands the events back so worker
/// threads that die before export still show up.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::string thread_name;

  ThreadBuffer();
  ~ThreadBuffer();
};

/// Global collection point.  Holds pointers to live thread buffers and
/// the events/names of exited threads.
struct TraceSink {
  std::mutex mutex;
  std::uint32_t next_tid = 1;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  std::map<std::uint32_t, std::string> thread_names;

  static TraceSink& instance() {
    static TraceSink sink;
    return sink;
  }
};

ThreadBuffer::ThreadBuffer() {
  TraceSink& sink = TraceSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  tid = sink.next_tid++;
  sink.live.push_back(this);
}

ThreadBuffer::~ThreadBuffer() {
  TraceSink& sink = TraceSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.retired.insert(sink.retired.end(), events.begin(), events.end());
  if (!thread_name.empty()) sink.thread_names[tid] = thread_name;
  sink.live.erase(std::remove(sink.live.begin(), sink.live.end(), this),
                  sink.live.end());
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

void maybe_test_delay(const char* name) {
  // "<span-name>:<us>", parsed once.  Empty target = disabled.
  struct SlowSpec {
    std::string target;
    long micros = 0;
    SlowSpec() {
      const char* spec = std::getenv("SOCET_TRACE_TEST_SLOW");
      if (spec == nullptr) return;
      const char* colon = std::strrchr(spec, ':');
      if (colon == nullptr || colon == spec) return;
      char* end = nullptr;
      const long value = std::strtol(colon + 1, &end, 10);
      if (end == colon + 1 || *end != '\0' || value <= 0) return;
      target.assign(spec, static_cast<std::size_t>(colon - spec));
      micros = value;
    }
  };
  static const SlowSpec spec;
  if (spec.micros > 0 && spec.target == name) {
    std::this_thread::sleep_for(std::chrono::microseconds(spec.micros));
  }
}

}  // namespace detail

std::uint64_t new_span_id() {
  static std::atomic<std::uint64_t> counter{1};
  // High bits: nanoseconds at first use, so ids minted by the client
  // process and the daemon process never collide in one merged trace.
  static const std::uint64_t seed = (now_ns() << 16) & 0x7fffffff00000000ull;
  return seed | counter.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {

/// Per-thread capture state owned by the active SpanCapture.
struct CaptureState {
  std::uint64_t remote_parent = 0;
  std::vector<std::uint64_t> open;  ///< ids of currently open spans
  std::vector<SpanRecord> records;
};

namespace {
thread_local CaptureState* g_capture = nullptr;
}  // namespace

bool capture_active() { return g_capture != nullptr; }

void capture_open(std::uint64_t* id, std::uint64_t* parent) {
  CaptureState* state = g_capture;
  if (state == nullptr) return;
  *parent = state->open.empty() ? state->remote_parent : state->open.back();
  *id = new_span_id();
  state->open.push_back(*id);
}

void capture_close(const char* name, std::uint64_t id, std::uint64_t parent,
                   std::uint64_t start_ns, std::uint64_t end_ns) {
  CaptureState* state = g_capture;
  if (state == nullptr) return;
  if (!state->open.empty() && state->open.back() == id) state->open.pop_back();
  state->records.push_back(
      SpanRecord{name, local_buffer().tid, id, parent, start_ns, end_ns});
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns) {
  ThreadBuffer& buffer = local_buffer();
  buffer.events.push_back(TraceEvent{name, buffer.tid, start_ns, end_ns});
}

}  // namespace detail

SpanCapture::SpanCapture(std::uint64_t trace_id, std::uint64_t remote_parent)
    : trace_id_(trace_id) {
  if (detail::g_capture != nullptr) return;  // nested capture: passive
  auto* state = new detail::CaptureState;
  state->remote_parent = remote_parent;
  state_ = state;
  detail::g_capture = state;
}

SpanCapture::~SpanCapture() {
  if (state_ == nullptr) return;
  detail::g_capture = nullptr;
  delete static_cast<detail::CaptureState*>(state_);
}

std::vector<SpanRecord> SpanCapture::take() {
  if (state_ == nullptr) return {};
  return std::move(static_cast<detail::CaptureState*>(state_)->records);
}

void name_this_thread(const std::string& name) {
  ThreadBuffer& buffer = local_buffer();
  buffer.thread_name = name;
  TraceSink& sink = TraceSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.thread_names[buffer.tid] = name;
}

std::vector<TraceEvent> collect_trace_events() {
  TraceSink& sink = TraceSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  std::vector<TraceEvent> events = sink.retired;
  for (const ThreadBuffer* buffer : sink.live) {
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });
  return events;
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_trace_events();
  const std::uint64_t epoch = events.empty() ? 0 : events.front().start_ns;
  const auto ts_us = [epoch](std::uint64_t ns) {
    return json_number(static_cast<double>(ns - epoch) / 1e3);
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };

  // Thread-name metadata events give each lane a readable label.
  std::map<std::uint32_t, std::string> names;
  {
    TraceSink& sink = TraceSink::instance();
    std::lock_guard<std::mutex> lock(sink.mutex);
    names = sink.thread_names;
  }
  for (const auto& [tid, name] : names) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  // Spans within one thread nest strictly (RAII), so sorting by
  // (start asc, end desc) and unwinding a stack of open spans yields a
  // B/E sequence with valid Chrome nesting.
  std::map<std::uint32_t, std::vector<TraceEvent>> lanes;
  for (const TraceEvent& event : events) lanes[event.tid].push_back(event);
  for (const auto& [tid, lane] : lanes) {
    std::vector<TraceEvent> open;
    const auto close_span = [&](const TraceEvent& span) {
      emit("{\"ph\":\"E\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"" + json_escape(span.name) +
           "\",\"cat\":\"socet\",\"ts\":" + ts_us(span.end_ns) + "}");
    };
    for (const TraceEvent& span : lane) {
      while (!open.empty() && open.back().end_ns <= span.start_ns) {
        close_span(open.back());
        open.pop_back();
      }
      emit("{\"ph\":\"B\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"" + json_escape(span.name) +
           "\",\"cat\":\"socet\",\"ts\":" + ts_us(span.start_ns) + "}");
      open.push_back(span);
    }
    while (!open.empty()) {
      close_span(open.back());
      open.pop_back();
    }
  }
  out += "]}";
  return out;
}

void reset_trace() {
  TraceSink& sink = TraceSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.retired.clear();
  sink.thread_names.clear();
  for (ThreadBuffer* buffer : sink.live) buffer->events.clear();
}

}  // namespace socet::obs
