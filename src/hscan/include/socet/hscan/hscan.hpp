// HSCAN: high-level scan insertion (Bhattacharya & Dey, VTS'96), the
// paper's underlying core-level DFT technique.
//
// Registers are stitched into parallel scan chains running from circuit
// inputs to circuit outputs.  Wherever an existing multiplexer or direct
// path already connects two registers, the chain reuses it for one or two
// extra gates; only when no path exists (or it conflicts with previously
// built chain segments) is a test multiplexer inserted.  Because the
// result is a full-scan circuit, test generation stays combinational.
//
// The returned configuration feeds three consumers:
//   * vector-count accounting: an HSCAN test sequence applies
//     combinational vectors in (max chain depth + 1)-cycle frames;
//   * the transparency engine, which prefers reusing HSCAN edges (the
//     darkened edges of the paper's Figure 7);
//   * area accounting for Table 2's HSCAN overhead column.
#pragma once

#include <vector>

#include "socet/rtl/netlist.hpp"
#include "socet/rtl/paths.hpp"

namespace socet::hscan {

enum class LinkKind : std::uint8_t {
  kMuxPath,   ///< reused existing mux path (select gating + load OR)
  kDirect,    ///< reused direct connection (load OR only)
  kTestMux,   ///< inserted scan multiplexer (integrated into scan FFs)
};

/// One hop of a scan chain: input port -> register, register -> register,
/// or register -> output port.
struct ChainLink {
  rtl::NodeRef from;
  rtl::NodeRef to;
  LinkKind kind = LinkKind::kTestMux;
  unsigned cost_cells = 0;
};

struct ScanChain {
  rtl::PortId head;  ///< input port feeding the chain
  rtl::PortId tail;  ///< output port observing the chain
  std::vector<rtl::RegisterId> registers;
  std::vector<ChainLink> links;

  /// Sequential depth = number of registers on the chain.
  [[nodiscard]] unsigned depth() const {
    return static_cast<unsigned>(registers.size());
  }
};

/// Per-feature cell costs, matching the paper's examples: a reused mux
/// path needs "just two extra logic gates" (Figure 1(a)); a direct
/// connection "only an OR gate"; an inserted test mux costs one mux cell
/// per bit (it is integrated into the destination scan flip-flops).
struct HscanCostModel {
  unsigned mux_path_link = 2;
  unsigned direct_link = 1;
  unsigned test_mux_per_bit = 1;
  /// Full-scan conversion cost per flip-flop (scan mux + enable buffer),
  /// for the FSCAN comparison column.
  unsigned fscan_per_ff = 4;
};

struct HscanConfig {
  std::vector<ScanChain> chains;
  unsigned overhead_cells = 0;
  unsigned max_depth = 0;

  /// Directed register/port node pairs whose existing paths the chains
  /// reuse — exactly the darkened RCG edges of the paper's Figure 7.
  std::vector<std::pair<rtl::NodeRef, rtl::NodeRef>> reused_edges;

  /// Chain hops realized by inserted test muxes.  These are *new* paths
  /// the RCG must add (also usable by the transparency search — the paper
  /// reuses "existing paths in the core, including HSCAN paths").
  std::vector<std::pair<rtl::NodeRef, rtl::NodeRef>> added_links;

  /// An HSCAN test sequence applies each combinational scan vector over
  /// (max depth + 1) cycles (shift in depth cycles + 1 capture).
  [[nodiscard]] unsigned vector_multiplier() const { return max_depth + 1; }

  /// HSCAN vector count for a combinational test set of `scan_vectors`
  /// patterns (the paper's 105 -> 525 expansion for the DISPLAY).
  [[nodiscard]] unsigned sequence_length(unsigned scan_vectors) const {
    return scan_vectors * vector_multiplier();
  }

  [[nodiscard]] bool covers(rtl::RegisterId reg) const;
};

/// Build HSCAN chains for `netlist`.  Every register lands on exactly one
/// chain; chains are balanced round-robin across the available input
/// ports.  Throws util::Error if the netlist has no input or no output
/// port (nothing to anchor a chain to).
HscanConfig build_hscan(const rtl::Netlist& netlist,
                        const HscanCostModel& cost = {});

/// Cell overhead of plain full scan on the same netlist (FSCAN column of
/// Table 2): every flip-flop becomes a scan flip-flop.
unsigned fscan_overhead_cells(const rtl::Netlist& netlist,
                              const HscanCostModel& cost = {});

}  // namespace socet::hscan
