#include "socet/hscan/hscan.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace socet::hscan {

namespace {

using rtl::NodeKind;
using rtl::NodeRef;
using rtl::PortId;
using rtl::RegisterId;
using rtl::TransferPath;

/// Candidate chain hop backed by an existing path.
struct Edge {
  NodeRef to;
  LinkKind kind;
};

}  // namespace

bool HscanConfig::covers(rtl::RegisterId reg) const {
  for (const auto& chain : chains) {
    if (std::find(chain.registers.begin(), chain.registers.end(), reg) !=
        chain.registers.end()) {
      return true;
    }
  }
  return false;
}

HscanConfig build_hscan(const rtl::Netlist& netlist,
                        const HscanCostModel& cost) {
  const auto inputs = netlist.input_ports();
  const auto outputs = netlist.output_ports();
  util::require(!inputs.empty() && !outputs.empty(),
                "build_hscan: netlist needs input and output ports");

  // Existing-path adjacency between RCG nodes.  Prefer direct links (an OR
  // gate) over mux paths (two gates); first match wins below, so sort
  // direct-first.
  std::map<NodeRef, std::vector<Edge>> adjacency;
  for (const TransferPath& path : rtl::enumerate_transfer_paths(netlist)) {
    adjacency[path.src].push_back(
        Edge{path.dst, path.direct() ? LinkKind::kDirect : LinkKind::kMuxPath});
  }
  for (auto& [node, edges] : adjacency) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) {
                       return static_cast<int>(a.kind) <
                              static_cast<int>(b.kind);
                     });
  }

  HscanConfig config;
  config.chains.reserve(inputs.size());
  for (PortId head : inputs) {
    ScanChain chain;
    chain.head = head;
    config.chains.push_back(std::move(chain));
  }

  std::set<RegisterId> unassigned;
  for (std::size_t i = 0; i < netlist.registers().size(); ++i) {
    unassigned.insert(RegisterId(static_cast<std::uint32_t>(i)));
  }

  auto link_cost = [&](LinkKind kind, const NodeRef& to) -> unsigned {
    switch (kind) {
      case LinkKind::kDirect:
        return cost.direct_link;
      case LinkKind::kMuxPath:
        return cost.mux_path_link;
      case LinkKind::kTestMux:
        return cost.test_mux_per_bit * rtl::node_width(netlist, to);
    }
    return 0;
  };

  auto tail_node = [&](const ScanChain& chain) -> NodeRef {
    if (chain.registers.empty()) return rtl::port_node(netlist, chain.head);
    return rtl::register_node(chain.registers.back());
  };

  auto extend = [&](ScanChain& chain, const NodeRef& to, LinkKind kind) {
    const NodeRef from = tail_node(chain);
    const unsigned cells = link_cost(kind, to);
    chain.links.push_back(ChainLink{from, to, kind, cells});
    chain.registers.push_back(RegisterId(to.index));
    config.overhead_cells += cells;
    if (kind == LinkKind::kTestMux) {
      config.added_links.emplace_back(from, to);
    } else {
      config.reused_edges.emplace_back(from, to);
    }
    unassigned.erase(RegisterId(to.index));
  };

  // Round-robin extension keeps the chains depth-balanced (low vector
  // multiplier).  Existing-path hops are always preferred; a test mux is
  // inserted only when no chain can grow along an existing path, and then
  // only one, on the shallowest chain, into a width-matched register.
  while (!unassigned.empty()) {
    bool progressed = false;
    for (ScanChain& chain : config.chains) {
      if (unassigned.empty()) break;
      const NodeRef from = tail_node(chain);
      if (auto it = adjacency.find(from); it != adjacency.end()) {
        for (const Edge& edge : it->second) {
          if (edge.to.kind != NodeKind::kRegister) continue;
          if (!unassigned.count(RegisterId(edge.to.index))) continue;
          extend(chain, edge.to, edge.kind);
          progressed = true;
          break;
        }
      }
    }
    if (progressed || unassigned.empty()) continue;

    // Deadlock: splice one test mux into the shallowest chain, preferring
    // a register whose width matches the chain tail's width.
    ScanChain* shallowest = &config.chains.front();
    for (ScanChain& chain : config.chains) {
      if (chain.depth() < shallowest->depth()) shallowest = &chain;
    }
    const unsigned tail_width =
        rtl::node_width(netlist, tail_node(*shallowest));
    RegisterId target = *unassigned.begin();
    for (RegisterId reg : unassigned) {
      if (netlist.reg(reg).width == tail_width) {
        target = reg;
        break;
      }
    }
    extend(*shallowest, rtl::register_node(target), LinkKind::kTestMux);
  }

  // Terminate every non-empty chain at an output port: reuse an existing
  // path if one exists, preferring ports not already used as a tail.
  std::set<PortId> used_tails;
  for (ScanChain& chain : config.chains) {
    if (chain.registers.empty()) continue;
    const NodeRef from = tail_node(chain);

    const Edge* best = nullptr;
    if (auto it = adjacency.find(from); it != adjacency.end()) {
      for (const Edge& edge : it->second) {
        if (edge.to.kind != NodeKind::kOutputPort) continue;
        if (best == nullptr) best = &edge;
        if (!used_tails.count(PortId(edge.to.index))) {
          best = &edge;
          break;
        }
      }
    }
    NodeRef to;
    LinkKind kind;
    if (best != nullptr) {
      to = best->to;
      kind = best->kind;
    } else {
      // Test mux onto the first free output port (or port 0 if all taken).
      PortId target = outputs.front();
      for (PortId po : outputs) {
        if (!used_tails.count(po)) {
          target = po;
          break;
        }
      }
      to = rtl::port_node(netlist, target);
      kind = LinkKind::kTestMux;
    }
    const unsigned cells = link_cost(kind, to);
    chain.links.push_back(ChainLink{from, to, kind, cells});
    chain.tail = PortId(to.index);
    used_tails.insert(chain.tail);
    config.overhead_cells += cells;
    if (kind == LinkKind::kTestMux) {
      config.added_links.emplace_back(from, to);
    } else {
      config.reused_edges.emplace_back(from, to);
    }
    config.max_depth = std::max(config.max_depth, chain.depth());
  }

  // Drop chains that never picked up a register.
  std::erase_if(config.chains,
                [](const ScanChain& c) { return c.registers.empty(); });
  return config;
}

unsigned fscan_overhead_cells(const rtl::Netlist& netlist,
                              const HscanCostModel& cost) {
  return netlist.flip_flop_count() * cost.fscan_per_ff;
}

}  // namespace socet::hscan
