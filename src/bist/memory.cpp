#include "socet/bist/memory.hpp"

namespace socet::bist {

FaultyMemory::FaultyMemory(std::uint32_t words, unsigned width)
    : words_(words), width_(width), data_(words, 0) {
  util::require(words > 0, "FaultyMemory: need at least one word");
  util::require(width > 0 && width <= 64,
                "FaultyMemory: width must be 1..64");
}

void FaultyMemory::inject(const MemFault& fault) {
  util::require(fault.address < words_ && fault.bit < width_,
                "inject: fault site out of range");
  if (fault.kind == MemFaultKind::kCouplingIdempotent) {
    util::require(
        fault.aggressor_address < words_ && fault.aggressor_bit < width_,
        "inject: aggressor out of range");
    util::require(fault.aggressor_address != fault.address ||
                      fault.aggressor_bit != fault.bit,
                  "inject: aggressor and victim coincide");
  }
  faults_.push_back(fault);
  // Stuck cells read stuck immediately.
  if (fault.kind == MemFaultKind::kStuckAt) {
    set_cell(fault.address, fault.bit, fault.value);
  }
}

void FaultyMemory::clear_faults() { faults_.clear(); }

bool FaultyMemory::cell(std::uint32_t address, unsigned bit) const {
  return (data_[address] >> bit) & 1;
}

void FaultyMemory::set_cell(std::uint32_t address, unsigned bit, bool value) {
  if (value) {
    data_[address] |= 1ULL << bit;
  } else {
    data_[address] &= ~(1ULL << bit);
  }
}

void FaultyMemory::apply_cell_write(std::uint32_t address, unsigned bit,
                                    bool value) {
  const bool old = cell(address, bit);

  // Faults constraining this cell's own behaviour.
  for (const MemFault& f : faults_) {
    if (f.address != address || f.bit != bit) continue;
    switch (f.kind) {
      case MemFaultKind::kStuckAt:
        return;  // never changes
      case MemFaultKind::kTransition:
        if (old != value && value == f.value) return;  // transition fails
        break;
      case MemFaultKind::kCouplingIdempotent:
        break;  // victim behaviour handled on aggressor writes
    }
  }
  set_cell(address, bit, value);

  // This write may be an aggressor transition for coupling faults.
  if (old != value) {
    const bool rising = value;
    for (const MemFault& f : faults_) {
      if (f.kind != MemFaultKind::kCouplingIdempotent) continue;
      if (f.aggressor_address != address || f.aggressor_bit != bit) continue;
      if (f.aggressor_rising != rising) continue;
      set_cell(f.address, f.bit, f.value);
    }
  }
}

void FaultyMemory::write(std::uint32_t address, std::uint64_t value) {
  util::require(address < words_, "write: address out of range");
  for (unsigned b = 0; b < width_; ++b) {
    apply_cell_write(address, b, (value >> b) & 1);
  }
}

std::uint64_t FaultyMemory::read(std::uint32_t address) const {
  util::require(address < words_, "read: address out of range");
  std::uint64_t value = data_[address];
  // Stuck cells dominate whatever the array holds.
  for (const MemFault& f : faults_) {
    if (f.kind == MemFaultKind::kStuckAt && f.address == address) {
      if (f.value) {
        value |= 1ULL << f.bit;
      } else {
        value &= ~(1ULL << f.bit);
      }
    }
  }
  if (width_ < 64) value &= (1ULL << width_) - 1;
  return value;
}

}  // namespace socet::bist
