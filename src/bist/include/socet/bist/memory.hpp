// Fault-injectable memory model for the BIST substrate.
//
// The paper's SOC contains RAM and ROM cores that SOCET leaves to
// distributed BIST (Zorian [8], Section 5).  This module supplies that
// substrate: a behavioural memory with injectable cell faults, so the
// March-test engine can be exercised and its fault-class coverage
// demonstrated (Table 1's BIST-tested memories are thereby "built, not
// assumed").
//
// Supported fault classes (the classic memory-test taxonomy):
//   * SAF  — cell stuck-at-0/1;
//   * TF   — transition fault (cell cannot make a 0->1 or 1->0 change);
//   * CFid — idempotent coupling fault (a transition in the aggressor
//            cell forces the victim to a fixed value).
#pragma once

#include <cstdint>
#include <vector>

#include "socet/util/error.hpp"

namespace socet::bist {

enum class MemFaultKind : std::uint8_t {
  kStuckAt,
  kTransition,   ///< cell cannot transition in `direction`
  kCouplingIdempotent,
};

struct MemFault {
  MemFaultKind kind = MemFaultKind::kStuckAt;
  std::uint32_t address = 0;
  unsigned bit = 0;
  /// kStuckAt: the stuck value.  kTransition: the *destination* value the
  /// cell cannot reach (true = up-transition fails).  kCoupling: the value
  /// forced on the victim.
  bool value = false;
  /// kCouplingIdempotent only: aggressor cell.
  std::uint32_t aggressor_address = 0;
  unsigned aggressor_bit = 0;
  /// kCouplingIdempotent only: aggressor transition that triggers
  /// (true = rising).
  bool aggressor_rising = true;
};

/// Word-organized RAM with optional injected faults.
class FaultyMemory {
 public:
  FaultyMemory(std::uint32_t words, unsigned width);

  std::uint32_t words() const { return words_; }
  unsigned width() const { return width_; }

  void inject(const MemFault& fault);
  void clear_faults();

  void write(std::uint32_t address, std::uint64_t value);
  std::uint64_t read(std::uint32_t address) const;

 private:
  void apply_cell_write(std::uint32_t address, unsigned bit, bool value);
  bool cell(std::uint32_t address, unsigned bit) const;
  void set_cell(std::uint32_t address, unsigned bit, bool value);

  std::uint32_t words_;
  unsigned width_;
  std::vector<std::uint64_t> data_;
  std::vector<MemFault> faults_;
};

}  // namespace socet::bist
