// March-test BIST engine (Zorian-style distributed memory BIST, the
// paper's reference [8]).
//
// A march test is a sequence of march elements, each an address sweep
// (ascending / descending / either) applying read-expect and write
// operations to every word.  March C- is provided as the standard
// algorithm (detects all SAFs, TFs and idempotent coupling faults in
// word-oriented memories); custom tests can be composed from elements.
//
// The engine returns pass/fail plus the cycle count, which is what a
// distributed BIST controller contributes to the SOC test schedule (the
// paper runs memory BIST in parallel with SOCET's logic-core testing).
#pragma once

#include <string>
#include <vector>

#include "socet/bist/memory.hpp"

namespace socet::bist {

enum class MarchOrder : std::uint8_t { kAscending, kDescending, kEither };

struct MarchOp {
  enum class Kind : std::uint8_t { kWrite0, kWrite1, kRead0, kRead1 };
  Kind kind = Kind::kWrite0;
};

struct MarchElement {
  MarchOrder order = MarchOrder::kAscending;
  std::vector<MarchOp> ops;
};

struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  /// Total memory operations for a memory of `words` words.
  [[nodiscard]] unsigned long long operation_count(std::uint32_t words) const;
};

/// March C-: {up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0);
/// either(r0)} — 10N operations.
MarchTest march_c_minus();

/// MATS+: {either(w0); up(r0,w1); down(r1,w0)} — 5N operations, SAF-only.
MarchTest mats_plus();

struct BistResult {
  bool pass = true;
  unsigned long long cycles = 0;
  /// First failing (address, bit-index-of-word-compare) if !pass.
  std::uint32_t fail_address = 0;
};

/// Run `test` against `memory` (word-wide data backgrounds 0/1).
BistResult run_march(FaultyMemory& memory, const MarchTest& test);

}  // namespace socet::bist
