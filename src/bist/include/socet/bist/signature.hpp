// Response compaction: multiple-input signature register (MISR).
//
// Scanning every response bit off-chip costs tester time and pins; a MISR
// compacts the whole response stream into one w-bit signature that the
// tester compares against the fault-free value.  The price is *aliasing*:
// a faulty stream may collapse to the good signature with probability
// ~2^-w.  This module provides the LFSR-based MISR the distributed-BIST
// scheme [8] would pair with the memory tests, plus an aliasing estimate,
// and the tests measure empirical aliasing against it.
#pragma once

#include <cstdint>

#include "socet/util/bitvector.hpp"
#include "socet/util/error.hpp"

namespace socet::bist {

class Misr {
 public:
  /// `width` up to 64 bits.  `taps` is the feedback polynomial (bit i set
  /// means state bit i feeds back into bit 0 alongside the shifted-out
  /// bit); the default taps per width come from standard primitive
  /// polynomials for 8/16/32 bits and a reasonable fallback otherwise.
  explicit Misr(unsigned width);
  Misr(unsigned width, std::uint64_t taps);

  unsigned width() const { return width_; }

  /// Absorb one cycle's parallel response word (low `width` bits used).
  void shift(std::uint64_t inputs);

  /// Absorb a multi-word response (BitVector of any width, consumed in
  /// `width`-bit chunks, low chunk first).
  void absorb(const util::BitVector& response);

  std::uint64_t signature() const { return state_; }
  void reset() { state_ = 0; }

  /// Probability that a random error stream aliases to the good
  /// signature: ~2^-width.
  [[nodiscard]] double aliasing_probability() const;

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_ = 0;
};

}  // namespace socet::bist
