#include "socet/bist/march.hpp"

namespace socet::bist {

unsigned long long MarchTest::operation_count(std::uint32_t words) const {
  unsigned long long ops = 0;
  for (const MarchElement& element : elements) {
    ops += static_cast<unsigned long long>(element.ops.size()) * words;
  }
  return ops;
}

MarchTest march_c_minus() {
  using K = MarchOp::Kind;
  MarchTest test;
  test.name = "March C-";
  test.elements = {
      {MarchOrder::kEither, {{K::kWrite0}}},
      {MarchOrder::kAscending, {{K::kRead0}, {K::kWrite1}}},
      {MarchOrder::kAscending, {{K::kRead1}, {K::kWrite0}}},
      {MarchOrder::kDescending, {{K::kRead0}, {K::kWrite1}}},
      {MarchOrder::kDescending, {{K::kRead1}, {K::kWrite0}}},
      {MarchOrder::kEither, {{K::kRead0}}},
  };
  return test;
}

MarchTest mats_plus() {
  using K = MarchOp::Kind;
  MarchTest test;
  test.name = "MATS+";
  test.elements = {
      {MarchOrder::kEither, {{K::kWrite0}}},
      {MarchOrder::kAscending, {{K::kRead0}, {K::kWrite1}}},
      {MarchOrder::kDescending, {{K::kRead1}, {K::kWrite0}}},
  };
  return test;
}

BistResult run_march(FaultyMemory& memory, const MarchTest& test) {
  BistResult result;
  const std::uint64_t ones =
      memory.width() >= 64 ? ~0ULL : ((1ULL << memory.width()) - 1);

  for (const MarchElement& element : test.elements) {
    const bool descending = element.order == MarchOrder::kDescending;
    for (std::uint32_t i = 0; i < memory.words(); ++i) {
      const std::uint32_t address =
          descending ? memory.words() - 1 - i : i;
      for (const MarchOp& op : element.ops) {
        ++result.cycles;
        switch (op.kind) {
          case MarchOp::Kind::kWrite0:
            memory.write(address, 0);
            break;
          case MarchOp::Kind::kWrite1:
            memory.write(address, ones);
            break;
          case MarchOp::Kind::kRead0:
            if (memory.read(address) != 0 && result.pass) {
              result.pass = false;
              result.fail_address = address;
            }
            break;
          case MarchOp::Kind::kRead1:
            if (memory.read(address) != ones && result.pass) {
              result.pass = false;
              result.fail_address = address;
            }
            break;
        }
      }
    }
  }
  return result;
}

}  // namespace socet::bist
