#include "socet/bist/signature.hpp"

#include <cmath>

namespace socet::bist {

namespace {

std::uint64_t default_taps(unsigned width) {
  // Primitive polynomials (tap masks exclude the implicit x^width term).
  switch (width) {
    case 8:
      return 0x1D;  // x^8 + x^4 + x^3 + x^2 + 1
    case 16:
      return 0x1021;  // CCITT
    case 32:
      return 0x04C11DB7;  // CRC-32
    default: {
      // Fallback: a sparse trinomial-ish mask that keeps the register
      // mixing; not guaranteed maximal-length but fine for compaction.
      std::uint64_t taps = 1;
      if (width > 2) taps |= 1ULL << (width / 2);
      if (width > 4) taps |= 1ULL << (width - 2);
      return taps;
    }
  }
}

}  // namespace

Misr::Misr(unsigned width) : Misr(width, default_taps(width)) {}

Misr::Misr(unsigned width, std::uint64_t taps)
    : width_(width), taps_(taps) {
  util::require(width >= 2 && width <= 64, "Misr: width must be 2..64");
  mask_ = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  taps_ &= mask_;
  util::require(taps_ != 0, "Misr: feedback taps must be nonzero");
}

void Misr::shift(std::uint64_t inputs) {
  const bool msb = (state_ >> (width_ - 1)) & 1;
  state_ = (state_ << 1) & mask_;
  if (msb) state_ ^= taps_;
  state_ ^= inputs & mask_;
}

void Misr::absorb(const util::BitVector& response) {
  for (std::size_t lo = 0; lo < response.width(); lo += width_) {
    const std::size_t len =
        std::min<std::size_t>(width_, response.width() - lo);
    shift(response.slice(lo, len).to_u64());
  }
  if (response.width() == 0) shift(0);
}

double Misr::aliasing_probability() const {
  return std::pow(2.0, -static_cast<double>(width_));
}

}  // namespace socet::bist
