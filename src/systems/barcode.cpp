#include <string>

#include "socet/systems/systems.hpp"

namespace socet::systems {

namespace {

using rtl::FuKind;
using rtl::Netlist;
using rtl::PinRef;

/// Adds a 2-input mux whose input 0 is `a` and input 1 is `b`, driving
/// `dst`; the select comes from `sel` (often a control-cloud bit).
/// Returns the mux id.
rtl::MuxId mux2(Netlist& n, const std::string& name, unsigned width,
                PinRef a, unsigned a_lo, PinRef b, unsigned b_lo, PinRef dst,
                unsigned dst_lo, PinRef sel, unsigned sel_lo) {
  auto m = n.add_mux(name, width, 2);
  n.connect(a, a_lo, n.mux_in(m, 0), 0, width);
  n.connect(b, b_lo, n.mux_in(m, 1), 0, width);
  n.connect(n.mux_out(m), 0, dst, dst_lo, width);
  n.connect(sel, sel_lo, n.mux_select(m), 0, 1);
  return m;
}

}  // namespace

rtl::Netlist make_cpu_rtl() {
  Netlist n("CPU");

  // Interface (Figures 2/3): the memory data bus feeds the CPU; the
  // address bus leaves in two slices (the paper's split CCG nodes).
  auto data = n.add_input("Data", 8);
  auto reset = n.add_input("Reset", 1, rtl::PortKind::kControl);
  auto intr = n.add_input("Interrupt", 1, rtl::PortKind::kControl);
  auto addr_lo = n.add_output("AddrLo", 8);
  auto addr_hi = n.add_output("AddrHi", 4);
  auto data_out = n.add_output("DataOut", 8);
  auto read = n.add_output("Read", 1, rtl::PortKind::kControl);
  auto write = n.add_output("Write", 1, rtl::PortKind::kControl);

  // Register file of Figure 3.
  auto ir = n.add_register("IR", 8);
  auto ac = n.add_register("ACCUMULATOR", 8);
  auto sr = n.add_register("SR", 4);
  auto pc_page = n.add_register("PCpage", 4);
  auto pc_off = n.add_register("PCoff", 8);
  auto mar_page = n.add_register("MARpage", 4);
  auto mar_off = n.add_register("MARoff", 8);
  auto ctl_r = n.add_register("CTLR", 1);
  auto ctl_w = n.add_register("CTLW", 1);

  // Datapath functional units.
  auto alu = n.add_fu("ALU", FuKind::kAlu, 8, 3);
  auto inc_pc = n.add_fu("INCPC", FuKind::kIncrement, 8, 1);
  auto inc_pg = n.add_fu("INCPG", FuKind::kIncrement, 4, 1);

  // Controller cloud: decodes IR/SR and sequences the datapath.  Inputs:
  // IR(8) + SR(4) + CTLR + CTLW = 14 bits; 24 control outputs.
  auto ctl = n.add_random_logic("CTRL", 14, 24, 2600, /*seed=*/0xC9);
  n.connect(n.reg_q(ir), 0, n.fu_in(ctl, 0), 0, 8);
  n.connect(n.reg_q(sr), 0, n.fu_in(ctl, 0), 8, 4);
  n.connect(n.reg_q(ctl_r), 0, n.fu_in(ctl, 0), 12, 1);
  n.connect(n.reg_q(ctl_w), 0, n.fu_in(ctl, 0), 13, 1);
  const PinRef c = n.fu_out(ctl);
  auto cbit = [&](unsigned b) { return b; };  // control bit index helper

  // ALU operands: ACCUMULATOR and Data; op select from the cloud.
  n.connect(n.reg_q(ac), n.fu_in(alu, 0));
  n.connect(n.pin(data), n.fu_in(alu, 1));
  n.connect(c, cbit(0), n.fu_in(alu, 2), 0, 2);

  // IR <- Data | ALU result (instruction fetch vs. data move).
  mux2(n, "m_ir", 8, n.pin(data), 0, n.fu_out(alu), 0, n.reg_d(ir), 0,
       c, 13);
  n.connect(c, cbit(2), n.reg_load(ir), 0, 1);

  // SR <- IR(7..4) | ALU flags (low nibble of the result here).
  mux2(n, "m_sr", 4, n.reg_q(ir), 4, n.fu_out(alu), 0, n.reg_d(sr), 0,
       c, 14);
  n.connect(c, cbit(3), n.reg_load(sr), 0, 1);

  // ACCUMULATOR is the paper's C-split node: its low nibble loads from
  // IR(3..0) (immediate operand), its high nibble from SR (flag restore) —
  // two different sources for two different slices.
  mux2(n, "m_acl", 4, n.reg_q(ir), 0, n.fu_out(alu), 0, n.reg_d(ac), 0,
       c, 15);
  mux2(n, "m_ach", 4, n.reg_q(sr), 0, n.fu_out(alu), 4, n.reg_d(ac), 4,
       c, 16);
  n.connect(c, cbit(4), n.reg_load(ac), 0, 1);

  // MARpage <- IR(3..0) | PCpage: the short branch from the O-split IR
  // that reaches Address(11..8) in two cycles.
  mux2(n, "m_mp", 4, n.reg_q(ir), 0, n.reg_q(pc_page), 0, n.reg_d(mar_page),
       0, c, 17);
  n.connect(c, cbit(5), n.reg_load(mar_page), 0, 1);

  // MARoff: the mux "M" of Figure 3 — PCoff for instruction fetch, and a
  // direct Data path (the Version 2 / Figure 5 shortcut).
  mux2(n, "M", 8, n.reg_q(pc_off), 0, n.pin(data), 0, n.reg_d(mar_off), 0,
       c, 18);
  n.connect(c, cbit(6), n.reg_load(mar_off), 0, 1);

  // PCoff <- PCoff + 1 | ACCUMULATOR (jump target).
  n.connect(n.reg_q(pc_off), n.fu_in(inc_pc, 0));
  mux2(n, "m_pco", 8, n.fu_out(inc_pc), 0, n.reg_q(ac), 0, n.reg_d(pc_off),
       0, c, 19);
  n.connect(c, cbit(7), n.reg_load(pc_off), 0, 1);

  // PCpage <- PCpage + 1 | MARpage.
  n.connect(n.reg_q(pc_page), n.fu_in(inc_pg, 0));
  mux2(n, "m_pcp", 4, n.fu_out(inc_pg), 0, n.reg_q(mar_page), 0,
       n.reg_d(pc_page), 0, c, 20);
  n.connect(c, cbit(8), n.reg_load(pc_page), 0, 1);

  // Control chains of Figure 4: Reset -> CTLR -> Read and
  // Interrupt -> CTLW -> Write, each a single-bit scan/transparency chain
  // bypassing the random logic.
  mux2(n, "m_cr", 1, n.pin(reset), 0, c, cbit(9), n.reg_d(ctl_r), 0,
       c, 21);
  mux2(n, "m_cw", 1, n.pin(intr), 0, c, cbit(10), n.reg_d(ctl_w), 0,
       c, 22);
  mux2(n, "m_rd", 1, n.reg_q(ctl_r), 0, c, cbit(11), n.pin(read), 0,
       c, 23);
  mux2(n, "m_wr", 1, n.reg_q(ctl_w), 0, c, cbit(12), n.pin(write), 0,
       c, 13);

  // Outputs: address slices straight off MAR, data bus off ACCUMULATOR.
  n.connect(n.reg_q(mar_off), n.pin(addr_lo));
  n.connect(n.reg_q(mar_page), n.pin(addr_hi));
  n.connect(n.reg_q(ac), n.pin(data_out));

  n.validate();
  return n;
}

rtl::Netlist make_preprocessor_rtl() {
  Netlist n("PREPROCESSOR");

  auto video = n.add_input("Video", 1);
  auto num = n.add_input("NUM", 8);
  auto reset = n.add_input("Reset", 1, rtl::PortKind::kControl);
  auto db = n.add_output("DB", 8);
  auto addr = n.add_output("Address", 12);
  auto eoc = n.add_output("Eoc", 1, rtl::PortKind::kControl);

  // Width-measuring pipeline: NUM -> F1 -> F2 -> F3 -> F4 -> DOUT -> DB
  // gives the minimum-area NUM -> DB latency of 5 (Figure 8(a)).
  auto f1 = n.add_register("F1", 8);
  auto f2 = n.add_register("F2", 8);
  auto f3 = n.add_register("F3", 8);
  auto f4 = n.add_register("F4", 8);
  auto dout = n.add_register("DOUT", 8);
  // Address generation: counter page + NUM-derived offset; the 12-bit
  // AREG is a C-split node (two sources for two slices).
  auto n1 = n.add_register("N1", 8);
  auto cnt = n.add_register("CNT", 4);
  auto areg = n.add_register("AREG", 12);
  // Video sampling and end-of-conversion chain (Reset -> Eoc latency 2).
  auto vreg = n.add_register("VREG", 1);
  auto e1 = n.add_register("E1", 1);
  auto e2 = n.add_register("E2", 1);

  auto wsum = n.add_fu("WSUM", FuKind::kAdd, 8, 2);
  auto inc_cnt = n.add_fu("INCC", FuKind::kIncrement, 4, 1);
  auto thresh = n.add_fu("THRESH", FuKind::kLess, 8, 2);
  auto kthr = n.add_constant("KTHR", util::BitVector(8, 0x40));

  auto ctl = n.add_random_logic("PCTRL", 15, 18, 1800, /*seed=*/0xBA);
  n.connect(n.reg_q(f4), 0, n.fu_in(ctl, 0), 0, 8);
  n.connect(n.reg_q(cnt), 0, n.fu_in(ctl, 0), 8, 4);
  n.connect(n.reg_q(vreg), 0, n.fu_in(ctl, 0), 12, 1);
  n.connect(n.reg_q(e1), 0, n.fu_in(ctl, 0), 13, 1);
  n.connect(n.fu_out(thresh), 0, n.fu_in(ctl, 0), 14, 1);
  const PinRef c = n.fu_out(ctl);

  // Pipeline stages (each reusable as an HSCAN/transparency hop).
  mux2(n, "m_f1", 8, n.pin(num), 0, n.fu_out(wsum), 0, n.reg_d(f1), 0,
       c, 11);
  n.connect(c, 1, n.reg_load(f1), 0, 1);
  mux2(n, "m_f2", 8, n.reg_q(f1), 0, n.fu_out(wsum), 0, n.reg_d(f2), 0,
       c, 12);
  n.connect(c, 2, n.reg_load(f2), 0, 1);
  mux2(n, "m_f3", 8, n.reg_q(f2), 0, n.fu_out(wsum), 0, n.reg_d(f3), 0,
       c, 13);
  n.connect(c, 3, n.reg_load(f3), 0, 1);
  mux2(n, "m_f4", 8, n.reg_q(f3), 0, n.fu_out(wsum), 0, n.reg_d(f4), 0,
       c, 14);
  n.connect(c, 4, n.reg_load(f4), 0, 1);
  // DOUT <- F4 (pipeline end) | NUM (the Version-2 one-cycle bypass).
  mux2(n, "m_do", 8, n.reg_q(f4), 0, n.pin(num), 0, n.reg_d(dout), 0,
       c, 15);
  n.connect(c, 5, n.reg_load(dout), 0, 1);

  n.connect(n.reg_q(f4), n.fu_in(wsum, 0));
  n.connect(n.reg_q(f1), n.fu_in(wsum, 1));
  n.connect(n.reg_q(f4), n.fu_in(thresh, 0));
  n.connect(n.const_out(kthr), n.fu_in(thresh, 1));

  // Address path: NUM -> N1 -> AREG(7..0); CNT -> AREG(11..8).
  mux2(n, "m_n1", 8, n.pin(num), 0, n.fu_out(wsum), 0, n.reg_d(n1), 0,
       c, 16);
  n.connect(c, 6, n.reg_load(n1), 0, 1);
  n.connect(n.reg_q(cnt), n.fu_in(inc_cnt, 0));
  // The page counter is presettable from NUM (the paper's NUM -> Address
  // latency-2 path needs both AREG slices reachable in one hop).
  mux2(n, "m_cnt", 4, n.fu_out(inc_cnt), 0, n.pin(num), 0, n.reg_d(cnt), 0,
       c, 17);
  n.connect(c, 7, n.reg_load(cnt), 0, 1);
  mux2(n, "m_al", 8, n.reg_q(n1), 0, n.fu_out(wsum), 0, n.reg_d(areg), 0,
       c, 11);
  mux2(n, "m_ah", 4, n.reg_q(cnt), 0, n.fu_out(wsum), 4, n.reg_d(areg), 8,
       c, 12);
  n.connect(c, 8, n.reg_load(areg), 0, 1);

  // Video / end-of-conversion control chains.
  mux2(n, "m_v", 1, n.pin(video), 0, c, 9, n.reg_d(vreg), 0,
       c, 13);
  mux2(n, "m_e1", 1, n.pin(reset), 0, n.reg_q(vreg), 0, n.reg_d(e1), 0,
       c, 14);
  mux2(n, "m_e2", 1, n.reg_q(e1), 0, c, 10, n.reg_d(e2), 0,
       c, 15);

  n.connect(n.reg_q(dout), n.pin(db));
  n.connect(n.reg_q(areg), n.pin(addr));
  n.connect(n.reg_q(e2), n.pin(eoc));

  n.validate();
  return n;
}

rtl::Netlist make_display_rtl() {
  Netlist n("DISPLAY");

  // 20 internal input bits (A 12 + D 8) and 66 flip-flops, matching the
  // paper's FSCAN-BSCAN arithmetic ((66+20) x 105 + 85 = 9,115).
  auto d = n.add_input("D", 8);
  auto a_lo = n.add_input("ALo", 8);
  auto a_hi = n.add_input("AHi", 4);
  std::vector<rtl::PortId> ports;
  for (int i = 1; i <= 6; ++i) {
    ports.push_back(n.add_output("PORT" + std::to_string(i), 7));
  }

  auto dreg = n.add_register("DREG", 8);
  auto areg = n.add_register("AREG", 12);
  auto cnt = n.add_register("CNT", 4);
  std::vector<rtl::RegisterId> seg;
  for (int i = 1; i <= 6; ++i) {
    seg.push_back(n.add_register("SEG" + std::to_string(i), 7));
  }

  auto inc_cnt = n.add_fu("INCC", FuKind::kIncrement, 4, 1);
  // Binary-coded-decimal to seven-segment decode cloud.
  auto ctl = n.add_random_logic("DECODE", 24, 20, 1300, /*seed=*/0xD1);
  n.connect(n.reg_q(dreg), 0, n.fu_in(ctl, 0), 0, 8);
  n.connect(n.reg_q(areg), 0, n.fu_in(ctl, 0), 8, 12);
  n.connect(n.reg_q(cnt), 0, n.fu_in(ctl, 0), 20, 4);
  const PinRef c = n.fu_out(ctl);

  // DREG <- D (bus capture) | AREG(7..0) (address-mapped register file
  // readback) — the A -> OUT latency-3 path goes through here.
  mux2(n, "m_d", 8, n.pin(d), 0, n.reg_q(areg), 0, n.reg_d(dreg), 0,
       c, 17);
  n.connect(c, 1, n.reg_load(dreg), 0, 1);

  // AREG is C-split: low byte from ALo, page nibble from AHi.
  mux2(n, "m_al", 8, n.pin(a_lo), 0, n.reg_q(dreg), 0, n.reg_d(areg), 0,
       c, 18);
  mux2(n, "m_ah", 4, n.pin(a_hi), 0, n.reg_q(cnt), 0, n.reg_d(areg), 8,
       c, 19);
  n.connect(c, 2, n.reg_load(areg), 0, 1);

  n.connect(n.reg_q(cnt), n.fu_in(inc_cnt, 0));
  mux2(n, "m_cnt", 4, n.fu_out(inc_cnt), 0, n.reg_q(dreg), 0, n.reg_d(cnt),
       0, c, 17);
  n.connect(c, 3, n.reg_load(cnt), 0, 1);

  // Segment registers: decoded value | DREG passthrough (scan path).  The
  // first segment also takes ALo directly — the existing shortcut the
  // Version 2 menu recruits for A -> OUT latency 1.
  for (int i = 0; i < 6; ++i) {
    auto m = n.add_mux("m_s" + std::to_string(i + 1), 7,
                       i == 0 ? 3u : 2u);
    n.connect(c, 4 + static_cast<unsigned>(i), n.mux_in(m, 0), 0, 7);
    n.connect(n.reg_q(dreg), 0, n.mux_in(m, 1), 0, 7);
    if (i == 0) n.connect(n.pin(a_lo), 0, n.mux_in(m, 2), 0, 7);
    n.connect(n.mux_out(m), n.reg_d(seg[i]));
    n.connect(c, 10 + static_cast<unsigned>(i),
              n.mux_select(m), 0, i == 0 ? 2u : 1u);
    n.connect(c, 16, n.reg_load(seg[i]), 0, 1);
    n.connect(n.reg_q(seg[i]), n.pin(ports[i]));
  }

  n.validate();
  return n;
}

core::Core& System::core_named(const std::string& name) {
  for (auto& core : cores) {
    if (core->name() == name) return *core;
  }
  util::raise("System: no core named '" + name + "'");
}

System make_barcode_system(const core::CoreCostModels& cost) {
  System system;
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_cpu_rtl(), cost)));
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_preprocessor_rtl(), cost)));
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_display_rtl(), cost)));

  // Default precomputed test-set sizes (combinational scan vectors); the
  // benchmark harness can overwrite them with measured ATPG counts.  The
  // DISPLAY's 105 is the paper's own number.
  system.core_named("CPU").set_scan_vectors(110);
  system.core_named("PREPROCESSOR").set_scan_vectors(95);
  system.core_named("DISPLAY").set_scan_vectors(105);

  auto soc = std::make_unique<soc::Soc>("System1");
  const auto cpu = soc->add_core(system.cores[0].get());
  const auto pre = soc->add_core(system.cores[1].get());
  const auto disp = soc->add_core(system.cores[2].get());

  auto video = soc->add_pi("Video", 1);
  auto num = soc->add_pi("NUM", 8);
  auto reset = soc->add_pi("Reset", 1);
  auto cpu_reset = soc->add_pi("CpuReset", 1);
  for (int i = 1; i <= 6; ++i) {
    soc->add_po("PO-PORT" + std::to_string(i), 7);
  }

  // Figure 2 wiring.  The PREPROCESSOR writes bar widths over DB; the CPU
  // reads them (Data) and addresses the DISPLAY; Eoc interrupts the CPU.
  soc->connect(video, pre, "Video");
  soc->connect(num, pre, "NUM");
  soc->connect(reset, pre, "Reset");
  soc->connect(cpu_reset, cpu, "Reset");
  soc->connect(pre, "DB", cpu, "Data");
  soc->connect(pre, "Eoc", cpu, "Interrupt");
  soc->connect(cpu, "AddrLo", disp, "ALo");
  soc->connect(cpu, "AddrHi", disp, "AHi");
  soc->connect(pre, "DB", disp, "D");  // the shared data bus of Figure 2
  for (int i = 1; i <= 6; ++i) {
    soc->connect(disp, "PORT" + std::to_string(i),
                 soc->find_po("PO-PORT" + std::to_string(i)));
  }
  // The CPU's Read/Write/DataOut lines and the PREPROCESSOR's Address
  // output drive only the (BIST-tested, excluded) memories, exactly as in
  // Figure 2 — none reach chip pins, so the planner must add
  // system-level test muxes (the Figure 9 mux on PREPROCESSOR.Address).

  soc->validate();
  system.soc = std::move(soc);
  return system;
}

}  // namespace socet::systems
