// Reconstructed example systems-on-chip.
//
// The paper evaluates on two SOCs whose RTL is not public.  These
// reconstructions follow every structural detail the paper gives:
//
// System 1 — the barcode scanning embedded system of Figure 2:
//   * CPU (Figure 3, after Navabi's 8-bit processor): PC, MAR (page +
//     offset), IR, ACCUMULATOR, Status register; Data input; Address
//     output split (11..8)/(7..0); Read/Write control chains; the mux "M"
//     that enables the one-cycle Data -> Address(7..0) shortcut of
//     Version 2 (Figure 5).
//   * PREPROCESSOR: width-measuring pipeline (NUM -> DB latency 5 in the
//     minimum-area version, 1 via the Version-2 bypass), address counter
//     (NUM -> Address latency 2), Reset -> Eoc control chain (latency 2).
//   * DISPLAY: 66 flip-flops and 20 internal input bits, exactly the
//     paper's counts (12-bit address register, 8-bit data register,
//     4-bit counter, six 7-bit segment-code registers); D -> OUT
//     latency 2, A -> OUT latency 3.
//   * RAM/ROM are BIST-tested per the paper and excluded from the SOCET
//     flow (Section 5), so they are not modeled here.
//
// System 2 — a graphics processor core [9], a GCD core [10] and an X25
// protocol core [11], reconstructed from their HLS-benchmark descriptions
// and wired in a pipeline with deliberately unobservable points (forcing
// the system-level test muxes Table 2 charges for).
//
// Controller logic inside every core is a seeded random-logic cloud sized
// to land the total chip areas near the paper's Table 2 (System 1
// ~8,000 cells, System 2 ~5,500 cells).
#pragma once

#include <memory>
#include <vector>

#include "socet/soc/soc.hpp"

namespace socet::systems {

// Individual core RTL, for unit tests and core-level experiments.
rtl::Netlist make_cpu_rtl();
rtl::Netlist make_preprocessor_rtl();
rtl::Netlist make_display_rtl();
rtl::Netlist make_graphics_rtl();
rtl::Netlist make_gcd_rtl();
rtl::Netlist make_x25_rtl();

/// A fully prepared system: cores (with version menus and default test-set
/// sizes) plus the wired SOC.
struct System {
  std::vector<std::unique_ptr<core::Core>> cores;
  std::unique_ptr<soc::Soc> soc;

  core::Core& core_named(const std::string& name);
};

/// System 1, the barcode SOC of Figure 2 (CPU + PREPROCESSOR + DISPLAY).
System make_barcode_system(const core::CoreCostModels& cost = {});

/// System 2 (GRAPHICS + GCD + X25).
System make_system2(const core::CoreCostModels& cost = {});

}  // namespace socet::systems
