// Synthetic core and SOC generation for property tests and scaling
// studies.
//
// Cores are random but well-formed RTL: a register set connected by mux
// paths (with bit-slicing to exercise the split-node machinery),
// functional units, and optional control clouds.  SOCs wire generated
// cores into random DAG topologies with a controllable fraction of
// pin-adjacent ports.  Everything is seeded and deterministic.
#pragma once

#include <cstdint>
#include <memory>

#include "socet/soc/soc.hpp"
#include "socet/systems/systems.hpp"

namespace socet::systems {

struct SyntheticCoreOptions {
  unsigned registers = 6;
  unsigned width = 8;
  /// Probability (in percent) that a register pair gets a mux path.
  unsigned connectivity_pct = 40;
  /// Create bit-sliced (split-node) connections.
  bool with_splits = true;
  /// Attach a control cloud (makes the core unusable by rtl::Interpreter
  /// but realistic for ATPG studies).
  bool with_cloud = false;
  unsigned inputs = 2;
  unsigned outputs = 2;
};

rtl::Netlist make_synthetic_core(const std::string& name, std::uint64_t seed,
                                 const SyntheticCoreOptions& options = {});

struct SyntheticSocOptions {
  unsigned cores = 4;
  SyntheticCoreOptions core;
  /// Percent of core inputs wired to chip PIs (the rest chain to upstream
  /// cores when possible, or stay dangling to exercise system muxes).
  unsigned pin_adjacency_pct = 40;
  unsigned scan_vectors = 40;
};

/// A fully prepared synthetic system (cores + wired SOC), deterministic
/// per seed.
System make_synthetic_system(std::uint64_t seed,
                             const SyntheticSocOptions& options = {});

}  // namespace socet::systems
