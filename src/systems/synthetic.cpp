#include "socet/systems/synthetic.hpp"

#include "socet/util/rng.hpp"

namespace socet::systems {

namespace {

using rtl::FuKind;
using rtl::Netlist;
using rtl::PinRef;

}  // namespace

rtl::Netlist make_synthetic_core(const std::string& name, std::uint64_t seed,
                                 const SyntheticCoreOptions& options) {
  util::require(options.registers >= 1, "synthetic core: need registers");
  util::require(options.inputs >= 1 && options.outputs >= 1,
                "synthetic core: need ports");
  util::Rng rng(seed);
  Netlist n(name);

  std::vector<rtl::PortId> ins;
  std::vector<rtl::PortId> outs;
  for (unsigned i = 0; i < options.inputs; ++i) {
    ins.push_back(n.add_input("IN" + std::to_string(i), options.width));
  }
  for (unsigned i = 0; i < options.outputs; ++i) {
    outs.push_back(n.add_output("OUT" + std::to_string(i), options.width));
  }

  std::vector<rtl::RegisterId> regs;
  for (unsigned i = 0; i < options.registers; ++i) {
    regs.push_back(n.add_register("R" + std::to_string(i), options.width));
  }

  // Per register, gather alternative sources, then build one mux.
  std::vector<std::vector<std::pair<PinRef, unsigned>>> sources(
      options.registers);
  // Backbone: a chain IN0 -> R0 -> R1 -> ... keeps every register
  // reachable (so HSCAN reuses paths and transparency usually exists).
  sources[0].emplace_back(n.pin(ins[0]), 0);
  for (unsigned i = 1; i < options.registers; ++i) {
    sources[i].emplace_back(n.reg_q(regs[i - 1]), 0);
  }
  // Random extra mux paths.
  for (unsigned from = 0; from < options.registers; ++from) {
    for (unsigned to = 0; to < options.registers; ++to) {
      if (from == to) continue;
      if (rng.next_below(100) >= options.connectivity_pct) continue;
      sources[to].emplace_back(n.reg_q(regs[from]), 0);
    }
  }
  // Extra input fanin.
  for (unsigned i = 1; i < options.inputs; ++i) {
    const unsigned to = static_cast<unsigned>(rng.next_below(options.registers));
    sources[to].emplace_back(n.pin(ins[i]), 0);
  }

  unsigned mux_count = 0;
  for (unsigned r = 0; r < options.registers; ++r) {
    auto& alts = sources[r];
    const bool split = options.with_splits && options.width >= 4 &&
                       alts.size() >= 2 && rng.next_below(100) < 30;
    if (split) {
      // Two half-width muxes with different source sets: a C-split node.
      const unsigned half = options.width / 2;
      for (unsigned part = 0; part < 2; ++part) {
        auto m = n.add_mux("m" + std::to_string(mux_count++), half,
                           static_cast<unsigned>(alts.size()));
        for (std::size_t a = 0; a < alts.size(); ++a) {
          // Rotate sources between the halves so slices differ.
          const auto& [pin, lo] =
              alts[(a + part) % alts.size()];
          n.connect(pin, lo + (part == 0 ? 0 : 0), n.mux_in(m, static_cast<unsigned>(a)),
                    0, half);
        }
        n.connect(n.mux_out(m), 0, n.reg_d(regs[r]), part * half, half);
      }
    } else if (alts.size() == 1) {
      n.connect(alts[0].first, alts[0].second, n.reg_d(regs[r]), 0,
                options.width);
    } else {
      auto m = n.add_mux("m" + std::to_string(mux_count++), options.width,
                         static_cast<unsigned>(alts.size()));
      for (std::size_t a = 0; a < alts.size(); ++a) {
        n.connect(alts[a].first, alts[a].second,
                  n.mux_in(m, static_cast<unsigned>(a)), 0, options.width);
      }
      n.connect(n.mux_out(m), n.reg_d(regs[r]));
    }
  }

  // Outputs read the youngest registers.
  for (unsigned o = 0; o < options.outputs; ++o) {
    const unsigned r = options.registers - 1 - (o % options.registers);
    n.connect(n.reg_q(regs[r]), n.pin(outs[o]));
  }

  if (options.with_cloud) {
    auto cloud = n.add_random_logic("CTRL", options.width, 8,
                                    options.registers * 20, seed ^ 0xC10D);
    n.connect(n.reg_q(regs[0]), 0, n.fu_in(cloud, 0), 0, options.width);
    auto sink = n.add_output("CSTAT", 8, rtl::PortKind::kControl);
    n.connect(n.fu_out(cloud), n.pin(sink));
  }

  n.validate();
  return n;
}

System make_synthetic_system(std::uint64_t seed,
                             const SyntheticSocOptions& options) {
  util::Rng rng(seed ^ 0x50C);
  System system;
  for (unsigned c = 0; c < options.cores; ++c) {
    auto netlist = make_synthetic_core("SYN" + std::to_string(c),
                                       seed * 1000 + c, options.core);
    system.cores.push_back(std::make_unique<core::Core>(
        core::Core::prepare(std::move(netlist))));
    system.cores.back()->set_scan_vectors(options.scan_vectors);
  }

  auto soc = std::make_unique<soc::Soc>("SYNTH");
  for (auto& core : system.cores) soc->add_core(core.get());

  // One guaranteed PI and PO so routing has anchors.
  unsigned pi_count = 0;
  unsigned po_count = 0;

  for (unsigned c = 0; c < options.cores; ++c) {
    const auto& netlist = system.cores[c]->netlist();
    for (rtl::PortId in : netlist.input_ports()) {
      const unsigned width = netlist.port(in).width;
      const bool to_pin = c == 0 || rng.next_below(100) <
                                        options.pin_adjacency_pct;
      if (to_pin) {
        auto pi = soc->add_pi("PI" + std::to_string(pi_count++), width);
        soc->connect(pi, c, netlist.port(in).name);
      } else {
        // Feed from a width-matched output of an earlier core (DAG).
        const unsigned upstream = static_cast<unsigned>(rng.next_below(c));
        bool connected = false;
        for (rtl::PortId out :
             system.cores[upstream]->netlist().output_ports()) {
          if (system.cores[upstream]->netlist().port(out).width != width) {
            continue;
          }
          soc->connect(upstream,
                       system.cores[upstream]->netlist().port(out).name, c,
                       netlist.port(in).name);
          connected = true;
          break;
        }
        if (!connected) {
          auto pi = soc->add_pi("PI" + std::to_string(pi_count++), width);
          soc->connect(pi, c, netlist.port(in).name);
        }
      }
    }
    for (rtl::PortId out : netlist.output_ports()) {
      const bool to_pin =
          c + 1 == options.cores ||
          rng.next_below(100) < options.pin_adjacency_pct;
      if (to_pin) {
        auto po = soc->add_po("PO" + std::to_string(po_count++),
                              netlist.port(out).width);
        soc->connect(c, netlist.port(out).name, po);
      }
      // Outputs not wired to a PO may still feed downstream cores (the
      // loop above pulls them in); otherwise they exercise system muxes.
    }
  }

  soc->validate();
  system.soc = std::move(soc);
  return system;
}

}  // namespace socet::systems
