#include <string>

#include "socet/systems/systems.hpp"

namespace socet::systems {

namespace {

using rtl::FuKind;
using rtl::Netlist;
using rtl::PinRef;

rtl::MuxId mux2(Netlist& n, const std::string& name, unsigned width,
                PinRef a, unsigned a_lo, PinRef b, unsigned b_lo, PinRef dst,
                unsigned dst_lo, PinRef sel, unsigned sel_lo) {
  auto m = n.add_mux(name, width, 2);
  n.connect(a, a_lo, n.mux_in(m, 0), 0, width);
  n.connect(b, b_lo, n.mux_in(m, 1), 0, width);
  n.connect(n.mux_out(m), 0, dst, dst_lo, width);
  n.connect(sel, sel_lo, n.mux_select(m), 0, 1);
  return m;
}

}  // namespace

rtl::Netlist make_graphics_rtl() {
  Netlist n("GRAPHICS");

  // A line/circle-drawing datapath in the style of the power-managed
  // graphics processor of [9]: coordinate registers, Bresenham error
  // accumulator, and a command decoder cloud.
  auto cmd = n.add_input("CMD", 8);
  auto din = n.add_input("DIN", 8);
  auto go = n.add_input("GO", 1, rtl::PortKind::kControl);
  auto px = n.add_output("PX", 8);
  auto py = n.add_output("PY", 8);
  auto done = n.add_output("Done", 1, rtl::PortKind::kControl);

  auto cmdr = n.add_register("CMDR", 8);
  auto xr = n.add_register("XR", 8);
  auto yr = n.add_register("YR", 8);
  auto dxr = n.add_register("DXR", 8);
  auto dyr = n.add_register("DYR", 8);
  auto err = n.add_register("ERR", 8);
  auto xo = n.add_register("XO", 8);
  auto yo = n.add_register("YO", 8);
  auto gr = n.add_register("GR", 1);
  auto dr = n.add_register("DR", 1);

  auto addx = n.add_fu("ADDX", FuKind::kAdd, 8, 2);
  auto suby = n.add_fu("SUBY", FuKind::kSub, 8, 2);
  auto adde = n.add_fu("ADDE", FuKind::kAdd, 8, 2);
  auto cmp = n.add_fu("CMP", FuKind::kLess, 8, 2);

  auto ctl = n.add_random_logic("GCTRL", 18, 20, 1300, /*seed=*/0x61);
  n.connect(n.reg_q(cmdr), 0, n.fu_in(ctl, 0), 0, 8);
  n.connect(n.reg_q(err), 0, n.fu_in(ctl, 0), 8, 8);
  n.connect(n.reg_q(gr), 0, n.fu_in(ctl, 0), 16, 1);
  n.connect(n.fu_out(cmp), 0, n.fu_in(ctl, 0), 17, 1);
  const PinRef c = n.fu_out(ctl);

  // Command / coordinate loads (existing mux paths usable by HSCAN).
  mux2(n, "m_cmd", 8, n.pin(cmd), 0, n.reg_q(xr), 0, n.reg_d(cmdr), 0, c, 10);
  n.connect(c, 0, n.reg_load(cmdr), 0, 1);
  mux2(n, "m_x", 8, n.pin(din), 0, n.fu_out(addx), 0, n.reg_d(xr), 0, c, 11);
  n.connect(c, 1, n.reg_load(xr), 0, 1);
  mux2(n, "m_y", 8, n.reg_q(xr), 0, n.fu_out(suby), 0, n.reg_d(yr), 0, c, 12);
  n.connect(c, 2, n.reg_load(yr), 0, 1);
  mux2(n, "m_dx", 8, n.reg_q(cmdr), 0, n.fu_out(addx), 0, n.reg_d(dxr), 0,
       c, 13);
  n.connect(c, 3, n.reg_load(dxr), 0, 1);
  mux2(n, "m_dy", 8, n.reg_q(dxr), 0, n.fu_out(suby), 0, n.reg_d(dyr), 0,
       c, 14);
  n.connect(c, 4, n.reg_load(dyr), 0, 1);
  mux2(n, "m_err", 8, n.reg_q(dyr), 0, n.fu_out(adde), 0, n.reg_d(err), 0,
       c, 15);
  n.connect(c, 5, n.reg_load(err), 0, 1);

  // Output pipeline registers.
  mux2(n, "m_xo", 8, n.reg_q(xr), 0, n.reg_q(err), 0, n.reg_d(xo), 0, c, 16);
  n.connect(c, 6, n.reg_load(xo), 0, 1);
  mux2(n, "m_yo", 8, n.reg_q(yr), 0, n.reg_q(err), 0, n.reg_d(yo), 0, c, 17);
  n.connect(c, 7, n.reg_load(yo), 0, 1);

  // Control chain GO -> GR -> DR -> Done.
  mux2(n, "m_gr", 1, n.pin(go), 0, c, 8, n.reg_d(gr), 0, c, 18);
  mux2(n, "m_dr", 1, n.reg_q(gr), 0, c, 9, n.reg_d(dr), 0, c, 19);

  n.connect(n.reg_q(xr), n.fu_in(addx, 0));
  n.connect(n.reg_q(dxr), n.fu_in(addx, 1));
  n.connect(n.reg_q(yr), n.fu_in(suby, 0));
  n.connect(n.reg_q(dyr), n.fu_in(suby, 1));
  n.connect(n.reg_q(err), n.fu_in(adde, 0));
  n.connect(n.reg_q(dyr), n.fu_in(adde, 1));
  n.connect(n.reg_q(err), n.fu_in(cmp, 0));
  n.connect(n.reg_q(dxr), n.fu_in(cmp, 1));

  n.connect(n.reg_q(xo), n.pin(px));
  n.connect(n.reg_q(yo), n.pin(py));
  n.connect(n.reg_q(dr), n.pin(done));

  n.validate();
  return n;
}

rtl::Netlist make_gcd_rtl() {
  Netlist n("GCD");

  // Euclid's algorithm from the HLS design repository [10].
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto start = n.add_input("Start", 1, rtl::PortKind::kControl);
  auto res = n.add_output("Result", 8);
  auto ready = n.add_output("Ready", 1, rtl::PortKind::kControl);

  auto ra = n.add_register("RA", 8);
  auto rb = n.add_register("RB", 8);
  auto ro = n.add_register("RO", 8);
  auto st = n.add_register("ST", 1);

  auto sub = n.add_fu("SUB", FuKind::kSub, 8, 2);
  auto less = n.add_fu("LESS", FuKind::kLess, 8, 2);
  auto eq = n.add_fu("EQZ", FuKind::kEqual, 8, 2);
  auto zero = n.add_constant("ZERO", util::BitVector(8, 0));

  // The controller observes the datapath registers directly (state +
  // comparator flags + operand bits), like the FSMD the HLS benchmark
  // describes.
  auto ctl = n.add_random_logic("GCDCTRL", 19, 10, 260, /*seed=*/0x6D);
  n.connect(n.reg_q(st), 0, n.fu_in(ctl, 0), 0, 1);
  n.connect(n.fu_out(less), 0, n.fu_in(ctl, 0), 1, 1);
  n.connect(n.fu_out(eq), 0, n.fu_in(ctl, 0), 2, 1);
  n.connect(n.reg_q(ra), 0, n.fu_in(ctl, 0), 3, 8);
  n.connect(n.reg_q(rb), 0, n.fu_in(ctl, 0), 11, 8);
  const PinRef c = n.fu_out(ctl);

  mux2(n, "m_a", 8, n.pin(a), 0, n.fu_out(sub), 0, n.reg_d(ra), 0, c, 4);
  n.connect(c, 0, n.reg_load(ra), 0, 1);
  mux2(n, "m_b", 8, n.pin(b), 0, n.reg_q(ra), 0, n.reg_d(rb), 0, c, 5);
  n.connect(c, 1, n.reg_load(rb), 0, 1);
  mux2(n, "m_o", 8, n.reg_q(ra), 0, n.reg_q(rb), 0, n.reg_d(ro), 0, c, 6);
  n.connect(c, 2, n.reg_load(ro), 0, 1);
  mux2(n, "m_st", 1, n.pin(start), 0, c, 3, n.reg_d(st), 0, c, 7);

  n.connect(n.reg_q(ra), n.fu_in(sub, 0));
  n.connect(n.reg_q(rb), n.fu_in(sub, 1));
  n.connect(n.reg_q(ra), n.fu_in(less, 0));
  n.connect(n.reg_q(rb), n.fu_in(less, 1));
  n.connect(n.reg_q(rb), n.fu_in(eq, 0));
  n.connect(n.const_out(zero), n.fu_in(eq, 1));

  n.connect(n.reg_q(ro), n.pin(res));
  n.connect(n.reg_q(st), n.pin(ready));

  n.validate();
  return n;
}

rtl::Netlist make_x25_rtl() {
  Netlist n("X25");

  // Frame-level X.25 protocol engine after [11]: receive/transmit
  // buffers, CRC accumulator, and a state-heavy control cloud.
  auto rx = n.add_input("RX", 8);
  auto ctl_in = n.add_input("CTL", 4, rtl::PortKind::kControl);
  auto tx = n.add_output("TX", 8);
  auto stat = n.add_output("STAT", 4, rtl::PortKind::kControl);

  auto rxr = n.add_register("RXR", 8);
  auto buf1 = n.add_register("BUF1", 8);
  auto buf2 = n.add_register("BUF2", 8);
  auto crc = n.add_register("CRC", 8);
  auto txr = n.add_register("TXR", 8);
  auto str = n.add_register("STR", 4);
  auto seq = n.add_register("SEQ", 4);

  auto xsum = n.add_fu("XSUM", FuKind::kXor, 8, 2);
  auto incs = n.add_fu("INCS", FuKind::kIncrement, 4, 1);

  auto ctl = n.add_random_logic("XCTRL", 16, 16, 1400, /*seed=*/0x25);
  n.connect(n.reg_q(str), 0, n.fu_in(ctl, 0), 0, 4);
  n.connect(n.reg_q(seq), 0, n.fu_in(ctl, 0), 4, 4);
  n.connect(n.reg_q(crc), 0, n.fu_in(ctl, 0), 8, 8);
  const PinRef c = n.fu_out(ctl);

  mux2(n, "m_rx", 8, n.pin(rx), 0, n.fu_out(xsum), 0, n.reg_d(rxr), 0, c, 8);
  n.connect(c, 0, n.reg_load(rxr), 0, 1);
  mux2(n, "m_b1", 8, n.reg_q(rxr), 0, n.fu_out(xsum), 0, n.reg_d(buf1), 0,
       c, 9);
  n.connect(c, 1, n.reg_load(buf1), 0, 1);
  mux2(n, "m_b2", 8, n.reg_q(buf1), 0, n.reg_q(crc), 0, n.reg_d(buf2), 0,
       c, 10);
  n.connect(c, 2, n.reg_load(buf2), 0, 1);
  mux2(n, "m_crc", 8, n.fu_out(xsum), 0, n.reg_q(buf2), 0, n.reg_d(crc), 0,
       c, 11);
  n.connect(c, 3, n.reg_load(crc), 0, 1);
  mux2(n, "m_tx", 8, n.reg_q(buf2), 0, n.reg_q(crc), 0, n.reg_d(txr), 0,
       c, 12);
  n.connect(c, 4, n.reg_load(txr), 0, 1);
  mux2(n, "m_st", 4, n.pin(ctl_in), 0, n.reg_q(seq), 0, n.reg_d(str), 0,
       c, 13);
  n.connect(c, 5, n.reg_load(str), 0, 1);
  mux2(n, "m_sq", 4, n.reg_q(str), 0, n.fu_out(incs), 0, n.reg_d(seq), 0,
       c, 14);
  n.connect(c, 6, n.reg_load(seq), 0, 1);

  n.connect(n.reg_q(rxr), n.fu_in(xsum, 0));
  n.connect(n.reg_q(crc), n.fu_in(xsum, 1));
  n.connect(n.reg_q(seq), n.fu_in(incs, 0));

  n.connect(n.reg_q(txr), n.pin(tx));
  n.connect(n.reg_q(str), n.pin(stat));

  n.validate();
  return n;
}

System make_system2(const core::CoreCostModels& cost) {
  System system;
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_graphics_rtl(), cost)));
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_gcd_rtl(), cost)));
  system.cores.push_back(std::make_unique<core::Core>(
      core::Core::prepare(make_x25_rtl(), cost)));

  system.core_named("GRAPHICS").set_scan_vectors(130);
  system.core_named("GCD").set_scan_vectors(55);
  system.core_named("X25").set_scan_vectors(120);

  auto soc = std::make_unique<soc::Soc>("System2");
  const auto gfx = soc->add_core(system.cores[0].get());
  const auto gcd = soc->add_core(system.cores[1].get());
  const auto x25 = soc->add_core(system.cores[2].get());

  auto cmd = soc->add_pi("CMD", 8);
  auto din = soc->add_pi("DIN", 8);
  auto go = soc->add_pi("GO", 1);
  auto start = soc->add_pi("Start", 1);
  auto ctl = soc->add_pi("CTL", 4);
  auto tx = soc->add_po("TX", 8);
  auto stat = soc->add_po("STAT", 4);
  auto done = soc->add_po("DONE", 1);
  auto ready = soc->add_po("READY", 1);

  // Pipeline wiring: the graphics core rasterizes, the GCD core reduces
  // coordinate pairs, the X25 core frames the result for transmission.
  soc->connect(cmd, gfx, "CMD");
  soc->connect(din, gfx, "DIN");
  soc->connect(go, gfx, "GO");
  soc->connect(start, gcd, "Start");
  soc->connect(ctl, x25, "CTL");
  soc->connect(gfx, "PX", gcd, "A");
  soc->connect(gfx, "PY", gcd, "B");
  soc->connect(gcd, "Result", x25, "RX");
  soc->connect(x25, "TX", tx);
  soc->connect(x25, "STAT", stat);
  soc->connect(gfx, "Done", done);
  soc->connect(gcd, "Ready", ready);

  soc->validate();
  system.soc = std::move(soc);
  return system;
}

}  // namespace socet::systems
