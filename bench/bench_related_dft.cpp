// Related-work comparison: every chip-level DFT approach the paper's
// introduction discusses, on one axis pair (chip-level area, chip TAT).
//
//   * FSCAN-BSCAN        — full scan + full boundary scan [2];
//   * partial isolation  — rings only on inaccessible ports [3];
//   * test bus           — direct mux access to every internal port;
//   * SOCET              — transparency + version selection (this paper),
//                          at its min-area and min-TAT design points.
//
// The expected ordering (the paper's Section 1 narrative): boundary scan
// is the most expensive; partial rings cheapen it; the test bus is fast
// but still port-proportional in area and cannot test interconnect; SOCET
// undercuts all of them on area while matching or beating the test bus's
// TAT order of magnitude.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("related_dft");
  using namespace socet;
  bench::print_header("chip-level DFT landscape", "Section 1 related work");

  bool ok = true;
  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    std::printf("--- %s ---\n", system.soc->name().c_str());

    auto bscan = baselines::fscan_bscan(*system.soc);
    auto rings = baselines::partial_isolation_rings(*system.soc);
    auto bus = baselines::test_bus(*system.soc);
    const auto min_area = soc::plan_chip_test(
        *system.soc, std::vector<unsigned>(system.soc->cores().size(), 0));
    auto min_tat = opt::minimize_tat(*system.soc, 1'000'000);

    util::Table table({"method", "chip-level cells", "chip TAT (cycles)"});
    table.add_row({"FSCAN-BSCAN [2]", std::to_string(bscan.chip_level_cells),
                   std::to_string(bscan.total_tat)});
    table.add_row({"partial isolation rings [3]",
                   std::to_string(rings.chip_level_cells),
                   std::to_string(rings.total_tat)});
    table.add_row({"test bus", std::to_string(bus.chip_level_cells),
                   std::to_string(bus.total_tat)});
    table.add_row({"SOCET min. area",
                   std::to_string(min_area.total_overhead_cells()),
                   std::to_string(min_area.total_tat)});
    table.add_row({"SOCET min. TApp.", std::to_string(min_tat.overhead_cells),
                   std::to_string(min_tat.tat)});
    std::printf("%s\n", table.to_text().c_str());

    ok = ok && rings.chip_level_cells < bscan.chip_level_cells;
    ok = ok && rings.total_tat <= bscan.total_tat;
    ok = ok && min_area.total_overhead_cells() < rings.chip_level_cells;
    ok = ok && min_area.total_overhead_cells() < bus.chip_level_cells;
    ok = ok && min_tat.tat < bscan.total_tat;
    ok = ok && min_tat.tat < rings.total_tat;
  }
  std::printf("shape check (rings < BSCAN; SOCET cheapest and fast): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
