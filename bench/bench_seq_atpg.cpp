// Substrate study: the sequential test generator behind Table 3's
// "Orig." row.
//
// The paper obtained the original circuits' (no-DFT) fault coverage from
// an in-house sequential test generation tool.  Ours is time-frame PODEM
// (atpg/sequential.hpp); this bench compares it against pure random
// sequences on the GCD core — the one System 2 core small enough for
// whole-core sequential ATPG — and shows the two claims that justify the
// whole SOCET enterprise:
//   1. deterministic sequential ATPG beats random functional testing, but
//   2. even it stays far below what full-scan + combinational ATPG reach —
//      sequential test generation "can be computationally prohibitive"
//      (paper Section 1), which is why cores get scan + transparency.
#include <chrono>

#include "socet/atpg/sequential.hpp"
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("seq_atpg");
  using namespace socet;
  bench::print_header("sequential ATPG substrate", "Table 3 'Orig.' rows");

  auto gcd = systems::make_gcd_rtl();
  auto elab = synth::elaborate(gcd);
  std::printf("GCD core: %zu cells\n\n", elab.gates.cell_count());

  using clock = std::chrono::steady_clock;
  util::Table table({"method", "FC (%)", "TE (%)", "time (ms)"});

  const auto t0 = clock::now();
  auto random_cov = atpg::sequential_coverage(elab.gates, 64, 7);
  const auto t1 = clock::now();
  auto seq = atpg::sequential_atpg(
      elab.gates, {.max_frames = 6, .backtrack_limit = 128,
                   .random_cycles = 64, .seed = 7});
  const auto t2 = clock::now();
  auto scan = atpg::generate_tests(elab.gates, {.random_patterns = 64});
  const auto t3 = clock::now();

  auto ms = [](auto a, auto b) {
    return std::to_string(
        std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
  };
  table.add_row({"random sequences (64 cycles)",
                 bench::fmt_pct(random_cov.fault_coverage()),
                 bench::fmt_pct(random_cov.test_efficiency()), ms(t0, t1)});
  table.add_row({"sequential ATPG (6 frames)",
                 bench::fmt_pct(seq.coverage().fault_coverage()),
                 bench::fmt_pct(seq.coverage().test_efficiency()),
                 ms(t1, t2)});
  table.add_row({"full scan + combinational ATPG",
                 bench::fmt_pct(scan.coverage().fault_coverage()),
                 bench::fmt_pct(scan.coverage().test_efficiency()),
                 ms(t2, t3)});
  std::printf("%s\n", table.to_text().c_str());

  const auto seq_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1).count();
  const auto scan_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t3 - t2).count();
  const bool ok =
      seq.coverage().fault_coverage() >= random_cov.fault_coverage() &&
      scan.coverage().fault_coverage() >= seq.coverage().fault_coverage() &&
      scan_ms * 5 < seq_ms;
  std::printf("shape check (sequential ATPG >= random; scan ATPG at least "
              "as good and >5x faster — Section 1's argument): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
