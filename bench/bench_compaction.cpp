// Extension study: static test-set compaction.
//
// The chip TAT is linear in each core's HSCAN vector count, so shrinking
// the precomputed test sets shrinks every row of Tables 1 and 3.  This
// bench compacts each core's ATPG set (reverse-order fault simulation
// with dropping), verifies coverage is preserved exactly, and re-plans
// System 1 with the compacted sets.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("compaction");
  using namespace socet;
  bench::print_header("test-set compaction extension", "TAT accounting");

  auto system = systems::make_barcode_system();
  util::Table table({"core", "vectors", "compacted", "FC before (%)",
                     "FC after (%)"});
  bool ok = true;
  for (auto& core : system.cores) {
    auto elab = synth::elaborate(core->netlist());
    auto result = atpg::generate_tests(elab.gates, {.random_patterns = 64});
    auto compact = atpg::compact_patterns(elab.gates, result.patterns);
    const auto before = atpg::grade_patterns(elab.gates, result.patterns);
    const auto after = atpg::grade_patterns(elab.gates, compact);
    table.add_row({core->name(), std::to_string(result.vector_count()),
                   std::to_string(compact.size()),
                   bench::fmt_pct(before.fault_coverage()),
                   bench::fmt_pct(after.fault_coverage())});
    ok = ok && compact.size() <= result.patterns.size();
    ok = ok && after.detected == before.detected;  // coverage preserved
    core->set_scan_vectors(static_cast<unsigned>(result.vector_count()));
  }
  std::printf("%s", table.to_text().c_str());

  const std::vector<unsigned> min_area(system.soc->cores().size(), 0);
  auto plan_full = soc::plan_chip_test(*system.soc, min_area);
  // Re-plan with compacted sets.
  {
    auto fresh = systems::make_barcode_system();
    for (std::size_t c = 0; c < fresh.cores.size(); ++c) {
      auto elab = synth::elaborate(fresh.cores[c]->netlist());
      auto result = atpg::generate_tests(elab.gates, {.random_patterns = 64});
      auto compact = atpg::compact_patterns(elab.gates, result.patterns);
      fresh.cores[c]->set_scan_vectors(static_cast<unsigned>(compact.size()));
    }
    auto plan_compact = soc::plan_chip_test(*fresh.soc, min_area);
    std::printf("\nSystem 1 min-area TAT: %llu -> %llu cycles "
                "(%.1f%% saved, zero coverage lost)\n",
                plan_full.total_tat, plan_compact.total_tat,
                100.0 * (1.0 - static_cast<double>(plan_compact.total_tat) /
                                   static_cast<double>(plan_full.total_tat)));
    ok = ok && plan_compact.total_tat <= plan_full.total_tat;
  }
  std::printf("\nshape check (smaller sets, identical coverage, lower TAT): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
