// Table 3: testability results for both systems.
//
// Rows, as in the paper:
//   * Orig.        — the chip with no DFT, random functional vectors from
//                    reset, observed at POs only (measured by whole-chip
//                    sequential fault simulation);
//   * HSCAN        — every core carries its HSCAN chains (physically
//                    inserted in the flat gate netlist), but no chip-level
//                    DFT: the chains' scan-in pins hang on internal nets,
//                    so chip-level coverage barely moves;
//   * FSCAN-BSCAN  — full scan + boundary scan: every core fault is
//                    combinationally testable (per-core ATPG coverage),
//                    at a serial-chain TAT cost;
//   * SOCET        — same core test sets justified through transparency,
//                    for the min-area and min-TApp design points.
//
// Paper values:
//   System 1: Orig 10.6/10.8; HSCAN 14.6/14.9;
//             FSCAN-BSCAN 98.4/99.8 @ 36,152;
//             SOCET 98.4/99.8 @ 17,387 (min area) / 3,806 (min TApp.)
//   System 2: Orig 11.2/11.3; HSCAN 13.8/13.8;
//             FSCAN-BSCAN 98.2/99.9 @ 46,394;
//             SOCET 98.2/99.9 @ 16,435 / 3,998
#include "common.hpp"

namespace {

using namespace socet;

void run_system(systems::System& system) {
  std::printf("--- %s ---\n", system.soc->name().c_str());

  std::printf("whole-chip sequential fault simulation (no DFT)...\n");
  auto orig =
      bench::chip_sequential_coverage(system, bench::ChipMode::kNoDft);
  std::printf("whole-chip sequential fault simulation (HSCAN, no chip "
              "DFT)...\n");
  auto hscan_only = bench::chip_sequential_coverage(
      system, bench::ChipMode::kHscanUnreachable);
  std::printf("per-core ATPG (scan-based rows)...\n");
  auto measured = bench::measure_cores(system);
  const auto scan_cov = measured.aggregate();

  auto bscan = baselines::fscan_bscan(*system.soc);
  const auto min_area_plan = soc::plan_chip_test(
      *system.soc, std::vector<unsigned>(system.soc->cores().size(), 0));
  auto min_tat = opt::minimize_tat(*system.soc, 1'000'000);

  util::Table table({"configuration", "FC (%)", "TEff. (%)", "TApp. (cycles)"});
  table.add_row({"Orig. (no DFT)", bench::fmt_pct(orig.fault_coverage()),
                 bench::fmt_pct(orig.test_efficiency()), "-"});
  table.add_row({"HSCAN only", bench::fmt_pct(hscan_only.fault_coverage()),
                 bench::fmt_pct(hscan_only.test_efficiency()), "-"});
  table.add_row({"FSCAN-BSCAN", bench::fmt_pct(scan_cov.fault_coverage()),
                 bench::fmt_pct(scan_cov.test_efficiency()),
                 std::to_string(bscan.total_tat)});
  table.add_row({"SOCET Min. Area", bench::fmt_pct(scan_cov.fault_coverage()),
                 bench::fmt_pct(scan_cov.test_efficiency()),
                 std::to_string(min_area_plan.total_tat)});
  table.add_row({"SOCET Min. TApp.", bench::fmt_pct(scan_cov.fault_coverage()),
                 bench::fmt_pct(scan_cov.test_efficiency()),
                 std::to_string(min_tat.tat)});
  std::printf("%s\n", table.to_text().c_str());

  const bool ok =
      orig.fault_coverage() < 40.0 &&
      hscan_only.fault_coverage() >= orig.fault_coverage() - 1.0 &&
      hscan_only.fault_coverage() < 50.0 &&
      scan_cov.fault_coverage() > 90.0 &&
      scan_cov.test_efficiency() > 95.0 &&
      min_area_plan.total_tat < bscan.total_tat &&
      min_tat.tat < min_area_plan.total_tat;
  std::printf("shape check (functional rows low, scan rows high, "
              "SOCET TAT < FSCAN-BSCAN): %s\n\n",
              ok ? "PASS" : "FAIL");
  if (!ok) std::exit(1);
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("table3_testability");
  bench::print_header("testability results", "Table 3");

  auto system1 = systems::make_barcode_system();
  run_system(system1);
  auto system2 = systems::make_system2();
  run_system(system2);

  std::printf(
      "paper:\n"
      "  System 1: Orig 10.6/10.8 | HSCAN 14.6/14.9 | "
      "FSCAN-BSCAN 98.4/99.8 @36,152 | SOCET @17,387 / @3,806\n"
      "  System 2: Orig 11.2/11.3 | HSCAN 13.8/13.8 | "
      "FSCAN-BSCAN 98.2/99.9 @46,394 | SOCET @16,435 / @3,998\n");
  return bench_report.finish(true);
}
