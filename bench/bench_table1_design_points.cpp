// Table 1: design space exploration for System 1 — area overhead, test
// application time, fault coverage and test efficiency for the
// minimum-area point, the minimum-TAT point found by exploration, and the
// all-minimum-latency point.
//
// Paper values:
//   each core min. area   (pt 1):  156 cells, 17,387 cycles, 98.4 / 99.8
//   min. chip TApp.       (pt 17): 307 cells,  3,806 cycles, 98.4 / 99.8
//   each core min. latency(pt 18): 325 cells,  3,818 cycles, 98.4 / 99.8
//
// FC/TEff are measured here exactly as in the paper's methodology: the
// chip-level test set is each core's precomputed (ATPG) test set justified
// through transparency, so chip coverage is the fault-population-weighted
// coverage of the per-core test sets (transparency moves vectors losslessly).
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("table1_design_points");
  using namespace socet;
  bench::print_header("System 1 design points", "Table 1");

  auto system = systems::make_barcode_system();
  std::printf("running per-core ATPG (measures test sets + coverage)...\n");
  auto measured = bench::measure_cores(system);
  const auto chip_cov = measured.aggregate();

  // Design points.
  const std::vector<unsigned> min_area(system.soc->cores().size(), 0);
  std::vector<unsigned> min_latency(system.soc->cores().size());
  for (std::uint32_t c = 0; c < min_latency.size(); ++c) {
    min_latency[c] =
        static_cast<unsigned>(system.soc->core(c).version_count() - 1);
  }
  auto explored = opt::minimize_tat(*system.soc, 1'000'000);

  util::Table table({"Circuit description", "A. Ov. (cells)",
                     "TApp. (cycles)", "FCov. (%)", "TEff. (%)"});
  auto add_point = [&](const std::string& label,
                       const std::vector<unsigned>& selection) {
    auto plan = soc::plan_chip_test(*system.soc, selection);
    table.add_row({label, std::to_string(plan.total_overhead_cells()),
                   std::to_string(plan.total_tat),
                   bench::fmt_pct(chip_cov.fault_coverage()),
                   bench::fmt_pct(chip_cov.test_efficiency())});
    return plan.total_tat;
  };
  const auto tat_slow = add_point("Each core has min. area (1)", min_area);
  const auto tat_fast = add_point("Min. chip TApp. (explored)",
                                  explored.selection);
  const auto tat_all = add_point("Each core has min. latency (last)",
                                 min_latency);
  std::printf("%s\n", table.to_text().c_str());

  std::printf("paper:  156 / 17,387 / 98.4 / 99.8\n"
              "        307 /  3,806 / 98.4 / 99.8  (min TApp., point 17)\n"
              "        325 /  3,818 / 98.4 / 99.8  (min latency, point 18)\n\n");

  const double reduction =
      static_cast<double>(tat_slow) / static_cast<double>(tat_fast);
  std::printf("TAT reduction min-area -> explored: %.2fx (paper: ~4.6x)\n",
              reduction);

  // The paper's point 17 vs 18 message: exploration lands at (or below)
  // the all-minimum-latency configuration at far less area.  Greedy may
  // sit within a whisker above it.
  const bool ok = tat_fast <= tat_all + tat_all / 100 && reduction > 2.0 &&
                  chip_cov.fault_coverage() > 90.0 &&
                  chip_cov.test_efficiency() > 95.0;
  std::printf("shape check (explored within 1%% of all-fast, >2x reduction, "
              "FC>90, TE>95): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
