// Ablation: reservation-aware routing (Section 5.1's edge-reuse shifting)
// vs naive independent shortest paths.
//
// The paper reserves each CCG edge for the cycles it carries data, so a
// second value over the same edge departs later ("the edge (NUM, DB) can
// only be utilized from cycle 6 onwards").  Disabling the reservations
// makes every route optimistically independent: the computed TAT drops
// below what the hardware can actually deliver — i.e., the naive schedule
// is *wrong*, not better.  This bench quantifies how much of the period
// accounting the reservation mechanism is responsible for.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("ablation_reservation");
  using namespace socet;
  bench::print_header("reservation-aware routing ablation",
                      "Section 5.1 mechanism");

  util::Table table({"system", "selection", "TAT (reserved)",
                     "TAT (naive)", "underestimate"});
  bool any_difference = false;

  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    for (unsigned v = 0; v < 2; ++v) {
      std::vector<unsigned> selection(system.soc->cores().size(), v);
      soc::PlanOptions naive;
      naive.ignore_reservations = true;
      const auto reserved = soc::plan_chip_test(*system.soc, selection);
      const auto independent =
          soc::plan_chip_test(*system.soc, selection, naive);
      const double factor = static_cast<double>(reserved.total_tat) /
                            static_cast<double>(independent.total_tat);
      any_difference =
          any_difference || reserved.total_tat != independent.total_tat;
      table.add_row({system.soc->name(), "all V" + std::to_string(v + 1),
                     std::to_string(reserved.total_tat),
                     std::to_string(independent.total_tat),
                     util::Table::num(factor, 2) + "x"});
    }
  }
  std::printf("%s\n", table.to_text().c_str());

  // The naive schedule can never be slower, and must differ somewhere
  // (shared serial groups exist in every minimum-area configuration).
  bool ok = any_difference;
  std::printf("shape check (naive underestimates somewhere): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
