// Shared plumbing for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figures;
// this header provides the measured ingredients: per-core ATPG runs (test
// sets + fault coverage), chip-area elaboration, whole-chip sequential
// fault simulation (flat, with or without physical scan chains), and
// coverage aggregation.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "report.hpp"
#include "socet/atpg/atpg.hpp"
#include "socet/baselines/baselines.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/soc/flatten.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/table.hpp"

namespace socet::bench {

struct CoreMeasurement {
  std::string name;
  double area_cells = 0;
  faultsim::CoverageSummary coverage;
  unsigned scan_vectors = 0;
};

struct SystemMeasurement {
  std::vector<CoreMeasurement> cores;
  double chip_area_cells = 0;

  /// Fault-population-weighted chip fault coverage / test efficiency.
  [[nodiscard]] faultsim::CoverageSummary aggregate() const {
    faultsim::CoverageSummary sum;
    for (const auto& core : cores) {
      sum.total += core.coverage.total;
      sum.detected += core.coverage.detected;
      sum.untestable += core.coverage.untestable;
      sum.aborted += core.coverage.aborted;
    }
    return sum;
  }
};

/// Run ATPG on every core of `system`: sets each core's scan-vector count
/// to the measured test-set size and returns areas + coverage.
inline SystemMeasurement measure_cores(systems::System& system,
                                       std::uint64_t seed = 7) {
  SystemMeasurement m;
  for (auto& core : system.cores) {
    auto elab = synth::elaborate(core->netlist());
    auto result =
        atpg::generate_tests(elab.gates, {.random_patterns = 64, .seed = seed});
    CoreMeasurement cm;
    cm.name = core->name();
    cm.area_cells = elab.gates.area();
    cm.coverage = result.coverage();
    cm.scan_vectors = static_cast<unsigned>(result.vector_count());
    core->set_scan_vectors(cm.scan_vectors);
    m.chip_area_cells += cm.area_cells;
    m.cores.push_back(std::move(cm));
  }
  return m;
}

/// Chip area only (no ATPG) — for the fast benches.
inline double chip_area(const systems::System& system) {
  double area = 0;
  for (const auto& core : system.cores) {
    area += synth::elaborate(core->netlist()).gates.area();
  }
  return area;
}

/// Scan-chain specs for the flattened chip: each core's HSCAN chains with
/// their scan-in pins bound to whatever drives the chain-head port at chip
/// level.
inline synth::ScanOptions flat_scan_options(const soc::Soc& soc,
                                            const soc::FlattenResult& flat) {
  synth::ScanOptions scan;
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const core::Core& core = soc.core(c);
    for (const auto& chain : core.hscan().chains) {
      synth::ScanOptions::Chain spec;
      for (rtl::RegisterId reg : chain.registers) {
        spec.registers.push_back(flat.chip.find_register(
            core.name() + "." + core.netlist().reg(reg).name));
      }
      const auto& head_name = core.netlist().port(chain.head).name;
      spec.scan_in = flat.chip.fu_out(
          flat.instances[c].port_proxies.at(head_name));
      scan.chains.push_back(std::move(spec));
    }
  }
  return scan;
}

/// Whole-chip functional test mode for chip_sequential_coverage.
enum class ChipMode {
  /// No DFT at all (Table 3 "Orig." row).
  kNoDft,
  /// Cores carry their HSCAN chains but no chip-level DFT exists — in
  /// particular no test controller, so ScanEnable is stuck inactive
  /// (Table 3 "HSCAN" row).
  kHscanUnreachable,
  /// Ablation: one bonded test pin toggles ScanEnable.  On a pipeline SOC
  /// whose end cores touch chip pins, the HSCAN chains then stitch into a
  /// chip-spanning shift path — a preview of what chip-level DFT buys.
  kHscanWithTestPin,
};

/// Whole-chip random sequential fault simulation (Table 3's "Orig." and
/// "HSCAN" rows, plus the scan-enable ablation).
inline faultsim::CoverageSummary chip_sequential_coverage(
    const systems::System& system, ChipMode mode, std::size_t cycles = 96,
    std::uint64_t seed = 11) {
  auto flat = soc::flatten(*system.soc);
  synth::Elaboration elab;
  if (mode == ChipMode::kNoDft) {
    elab = synth::elaborate(flat.chip);
  } else {
    elab = synth::elaborate_with_scan(flat.chip,
                                      flat_scan_options(*system.soc, flat));
  }

  auto sequence = atpg::random_sequence(elab.gates, cycles, seed);
  if (mode == ChipMode::kHscanUnreachable) {
    const auto& inputs = elab.gates.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (elab.gates.gate(inputs[i]).name == "ScanEnable") {
        for (auto& vector : sequence) vector.set(i, false);
      }
    }
  }
  auto faults = faultsim::enumerate_faults(elab.gates);
  std::vector<faultsim::FaultStatus> statuses(faults.size(),
                                              faultsim::FaultStatus::kUndetected);
  faultsim::SequentialFaultSim sim(elab.gates);
  sim.run(faults, sequence, statuses);
  return faultsim::summarize(statuses);
}

inline std::string fmt_pct(double value) { return util::Table::num(value, 1); }

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("=== %s ===\n(reproduces %s)\n\n", title, paper_ref);
}

}  // namespace socet::bench
