// Extension study: parallel test scheduling.
//
// The paper sums per-core test sessions; the SOC test-scheduling work
// that followed it (Chakrabarty et al.) overlaps compatible sessions.
// Pipeline SOCs like System 1 cannot overlap anything (every core is a
// conduit for its neighbours); star-shaped SOCs with pin-adjacent cores
// overlap almost everything.  This bench measures both regimes.
#include "common.hpp"

#include "socet/soc/parallel.hpp"
#include "socet/systems/synthetic.hpp"

int main() {
  socet::bench::BenchReport bench_report("parallel_schedule");
  using namespace socet;
  bench::print_header("parallel test scheduling extension",
                      "post-1998 test-scheduling literature");

  util::Table table({"system", "cores", "sessions", "sequential TAT",
                     "parallel TAT", "speedup"});
  bool ok = true;

  auto add_row = [&](const std::string& name, systems::System& system) {
    const std::vector<unsigned> selection(system.soc->cores().size(), 0);
    auto plan = soc::plan_chip_test(*system.soc, selection);
    auto schedule = soc::schedule_parallel(*system.soc, selection, plan);
    table.add_row({name, std::to_string(system.soc->cores().size()),
                   std::to_string(schedule.sessions.size()),
                   std::to_string(schedule.sequential_tat),
                   std::to_string(schedule.total_tat),
                   util::Table::num(schedule.speedup(), 2) + "x"});
    ok = ok && schedule.total_tat <= schedule.sequential_tat;
    return schedule;
  };

  auto system1 = systems::make_barcode_system();
  auto s1 = add_row("System1 (pipeline)", system1);
  ok = ok && s1.sessions.size() == system1.soc->cores().size();

  auto system2 = systems::make_system2();
  add_row("System2 (pipeline)", system2);

  // Star-shaped synthetic SOCs: high pin adjacency -> real parallelism.
  double best_speedup = 1.0;
  for (std::uint64_t seed : {31u, 47u}) {
    systems::SyntheticSocOptions options;
    options.cores = 6;
    options.pin_adjacency_pct = 95;
    auto star = systems::make_synthetic_system(seed, options);
    auto schedule =
        add_row("star-6 seed " + std::to_string(seed), star);
    best_speedup = std::max(best_speedup, schedule.speedup());
  }
  std::printf("%s\n", table.to_text().c_str());

  ok = ok && best_speedup > 1.8;
  std::printf("shape check (pipelines fully serial; star SOCs >1.8x "
              "speedup): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
