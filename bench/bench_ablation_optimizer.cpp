// Ablation: the paper's edge-usage heuristic (Section 5.2's latency
// numbers) vs exact re-planning for ranking version upgrades, and both vs
// exhaustive enumeration.
//
// The heuristic ranks a candidate upgrade by sum(edge usage x latency
// delta) over the current test solution, avoiding a full reschedule per
// candidate.  This bench checks how much quality that costs on both
// systems and under a sweep of area budgets.
#include <chrono>

#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("ablation_optimizer");
  using namespace socet;
  bench::print_header("optimizer ranking ablation", "Section 5.2 mechanism");

  util::Table table({"system", "budget (cells)", "exhaustive best",
                     "greedy+heuristic", "greedy+exact", "heuristic gap"});
  bool ok = true;

  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    auto points = opt::enumerate_design_space(*system.soc);

    for (double budget_scale : {1.5, 2.5, 10.0}) {
      const unsigned budget = static_cast<unsigned>(
          budget_scale * points.front().overhead_cells);
      unsigned long long best = ~0ull;
      for (const auto& p : points) {
        if (p.overhead_cells <= budget) best = std::min(best, p.tat);
      }
      opt::OptimizeOptions heuristic;
      heuristic.heuristic_ranking = true;
      opt::OptimizeOptions exact;
      exact.heuristic_ranking = false;
      auto h = opt::minimize_tat(*system.soc, budget, heuristic);
      auto e = opt::minimize_tat(*system.soc, budget, exact);
      const double gap =
          100.0 * (static_cast<double>(h.tat) - static_cast<double>(best)) /
          static_cast<double>(best);
      table.add_row({system.soc->name(), std::to_string(budget),
                     std::to_string(best), std::to_string(h.tat),
                     std::to_string(e.tat),
                     util::Table::num(gap, 1) + "%"});
      ok = ok && h.tat >= best && e.tat >= best;  // greedy never beats optimum
      ok = ok && h.tat <= 2 * best;               // ...but stays in range
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check (greedy within 2x of exhaustive optimum at "
              "every budget): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
