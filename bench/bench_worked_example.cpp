// Section 3's worked example: testing the embedded DISPLAY core through
// the transparency of the PREPROCESSOR and CPU.
//
// Paper arithmetic (with its core versions):
//   * 105 scan vectors x (depth 4 + 1) = 525 HSCAN vectors;
//   * per-vector justification period 9 (NUM->DB, then the CPU's
//     serialized 6+2 Data->Address transfer), TAT = 525 x 9 + 3 = 4,728;
//   * upgrading the CPU to Version 2 / Version 3 cuts the DISPLAY's TAT
//     to 2,103 / 1,578 cycles;
//   * FSCAN-BSCAN needs (66+20) x 105 + 85 = 9,115 cycles.
//
// In the reconstruction, the CPU's mux-M shortcut already gives Version 1
// the one-cycle Data -> Address(7..0) path (see EXPERIMENTS.md), so the
// core whose latency dominates the DISPLAY's justification period is the
// PREPROCESSOR (its NUM -> DB edge is used twice per vector, exactly the
// paper's Section 5.2 arithmetic).  The experiment is therefore replayed
// along both axes: upgrading the critical core collapses the embedded
// DISPLAY's TAT, and every configuration beats FSCAN-BSCAN.
#include "common.hpp"

namespace {

using namespace socet;

unsigned long long display_tat(const systems::System& system,
                               std::vector<unsigned> selection) {
  auto plan = soc::plan_chip_test(*system.soc, selection);
  return plan.cores[system.soc->find_core("DISPLAY")].tat;
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("worked_example");
  bench::print_header("testing the embedded DISPLAY (worked example)",
                      "Section 3 / Figure 2");

  auto system = systems::make_barcode_system();
  const auto cpu_index = system.soc->find_core("CPU");
  const auto pre_index = system.soc->find_core("PREPROCESSOR");
  const core::Core& display = system.core_named("DISPLAY");

  std::printf("DISPLAY: %u scan vectors x (depth %u + 1) = %u HSCAN vectors"
              " (paper: 105 x 5 = 525)\n\n",
              display.scan_vectors(), display.hscan().max_depth,
              display.hscan_vectors());

  auto bscan = baselines::fscan_bscan(*system.soc);
  unsigned long long bscan_display = 0;
  for (const auto& row : bscan.cores) {
    if (row.core == "DISPLAY") bscan_display = row.tat;
  }

  auto sweep = [&](const char* label, std::uint32_t varying) {
    util::Table table({std::string(label) + " version",
                       "DISPLAY TAT (cycles)", "vs FSCAN-BSCAN"});
    std::vector<unsigned long long> tats;
    for (unsigned v = 0; v < 3; ++v) {
      std::vector<unsigned> selection(system.soc->cores().size(), 0);
      selection[varying] = v;
      const auto tat = display_tat(system, selection);
      tats.push_back(tat);
      table.add_row({"Version " + std::to_string(v + 1), std::to_string(tat),
                     util::Table::num(static_cast<double>(bscan_display) /
                                          static_cast<double>(tat),
                                      2) +
                         "x faster"});
    }
    std::printf("%s\n", table.to_text().c_str());
    return tats;
  };

  auto pre_tats = sweep("PREPROCESSOR", pre_index);
  auto cpu_tats = sweep("CPU", cpu_index);

  std::printf("FSCAN-BSCAN on the DISPLAY: %llu cycles "
              "(paper: (66+20) x 105 + 85 = 9,115)\n",
              bscan_display);
  std::printf("paper SOCET TATs along its CPU sweep: 4,728 / 2,103 / 1,578\n\n");

  bool ok = pre_tats[0] > pre_tats[2];           // critical core helps a lot
  ok = ok && cpu_tats[0] >= cpu_tats[2];         // CPU upgrades never hurt
  for (auto tat : pre_tats) ok = ok && tat < bscan_display;
  for (auto tat : cpu_tats) ok = ok && tat < bscan_display;
  std::printf("shape check (upgrading the critical core slashes TAT; "
              "SOCET always beats FSCAN-BSCAN): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
