// socet serve request latency and warm-cache throughput.
//
// Phase 1 measures per-request round-trip latency over loopback with a
// serial client (one frame in flight): after a warm-up pass, 200
// requests against a hot cache give the p50/p95/p99 of the full
// client-write -> poll loop -> worker -> response-read path.  Phase 2
// replays a 64-job unique workload twice through one daemon: the first
// pass executes every job (cold), the second is served from the shared
// PlanCache (warm), and both passes must produce byte-identical
// records.
//
// Gates are correctness-shaped, not timing-shaped (CI boxes are noisy):
// every response ok, cold-vs-warm byte identity, zero cache misses on
// the warm pass, and a clean drain.  The latencies and the warm speedup
// ride along as metrics in the BENCH_serve_latency.json line.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "report.hpp"
#include "socet/service/client.hpp"
#include "socet/service/protocol.hpp"
#include "socet/service/server.hpp"
#include "socet/util/table.hpp"

namespace {

using namespace socet;
using Clock = std::chrono::steady_clock;

std::vector<std::string> unique_workload() {
  std::vector<std::string> lines;
  for (unsigned a = 1; a <= 3; ++a) {
    for (unsigned b = 1; b <= 3; ++b) {
      for (unsigned c = 1; c <= 3; ++c) {
        lines.push_back("plan system=barcode selection=" + std::to_string(a) +
                        "," + std::to_string(b) + "," + std::to_string(c));
      }
    }
  }
  for (unsigned budget = 0; budget <= 100; budget += 10) {
    lines.push_back("optimize system=barcode area-budget=" +
                    std::to_string(budget));
    lines.push_back("optimize system=system2 area-budget=" +
                    std::to_string(budget));
  }
  for (unsigned seed = 101; seed <= 120; ++seed) {
    lines.push_back("plan system=synthetic:" + std::to_string(seed) + ":6");
  }
  lines.push_back("explore system=barcode");
  lines.push_back("explore system=system2");
  lines.push_back("parallel system=barcode");
  lines.push_back("parallel system=system2");
  lines.push_back("program system=barcode");
  lines.push_back("program system=system2");
  lines.resize(64);
  return lines;
}

double quantile_us(std::vector<double> sorted_us, double q) {
  std::sort(sorted_us.begin(), sorted_us.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

}  // namespace

int main() {
  bench::BenchReport report("serve_latency");
  bool ok = true;

  service::ServerOptions options;
  options.threads = 2;
  service::Server server(std::move(options));
  server.start();

  // ---- phase 1: serial round-trip latency against a hot cache
  const int fd = service::net_connect("127.0.0.1", server.port());
  // Deliberately disjoint from the phase-2 workload, so that pass
  // still starts fully cold.
  const std::vector<std::string> hot = {
      "plan system=synthetic:1:4",
      "optimize system=barcode tat-budget=4000",
      "plan system=system2",
  };
  for (const std::string& line : hot) {  // warm-up: populate the cache
    service::write_frame(fd, line);
    if (!service::read_frame(fd)) ok = false;
  }
  constexpr unsigned kRequests = 200;
  std::vector<double> latencies_us;
  latencies_us.reserve(kRequests);
  for (unsigned r = 0; r < kRequests && ok; ++r) {
    const std::string& line = hot[r % hot.size()];
    const auto start = Clock::now();
    service::write_frame(fd, line);
    const auto response = service::read_frame(fd);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
    if (!response || response->rfind("ok ", 0) != 0) ok = false;
  }
  ::close(fd);
  const double p50_us = ok ? quantile_us(latencies_us, 0.5) : 0;
  const double p95_us = ok ? quantile_us(latencies_us, 0.95) : 0;
  const double p99_us = ok ? quantile_us(latencies_us, 0.99) : 0;

  // ---- phase 2: cold-vs-warm throughput through one shared cache
  const auto workload = unique_workload();
  const auto run_pass = [&](std::string* records, double* wall_ms) {
    service::ClientOptions client_options;
    client_options.port = server.port();
    service::Client client(client_options);
    const auto start = Clock::now();
    const auto pass = client.run_lines(workload);
    *wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    *records = pass.records_text();
    return pass.errors == 0 && pass.busy == 0;
  };
  const auto before_cold = server.stats();
  std::string cold_records;
  std::string warm_records;
  double cold_ms = 0;
  double warm_ms = 0;
  ok = run_pass(&cold_records, &cold_ms) && ok;
  const auto before_warm = server.stats();
  ok = run_pass(&warm_records, &warm_ms) && ok;
  const auto after_warm = server.stats();

  if (cold_records != warm_records) {
    std::printf("FAIL: warm records differ from cold records\n");
    ok = false;
  }
  const auto warm_misses = after_warm.cache.misses - before_warm.cache.misses;
  if (warm_misses != 0) {
    std::printf("FAIL: %llu cache misses on the warm pass\n",
                static_cast<unsigned long long>(warm_misses));
    ok = false;
  }
  if (before_warm.cache.misses - before_cold.cache.misses !=
      workload.size()) {
    std::printf("FAIL: cold pass did not miss on every unique job\n");
    ok = false;
  }

  server.request_drain();
  server.wait();

  const double jobs = static_cast<double>(workload.size());
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  util::Table table({"measure", "value"});
  table.add_row({"p50 round-trip", util::Table::num(p50_us) + " us"});
  table.add_row({"p95 round-trip", util::Table::num(p95_us) + " us"});
  table.add_row({"p99 round-trip", util::Table::num(p99_us) + " us"});
  table.add_row({"cold pass", util::Table::num(cold_ms, 2) + " ms (" +
                                  util::Table::num(jobs / cold_ms * 1000.0) +
                                  " jobs/s)"});
  table.add_row({"warm pass", util::Table::num(warm_ms, 2) + " ms (" +
                                  util::Table::num(jobs / warm_ms * 1000.0) +
                                  " jobs/s)"});
  table.add_row({"warm speedup", util::Table::num(speedup, 2) + "x"});
  std::printf("%s", table.to_text().c_str());

  report.metric("p50_us", p50_us);
  report.metric("p95_us", p95_us);
  report.metric("p99_us", p99_us);
  report.metric("cold_ms", cold_ms);
  report.metric("warm_ms", warm_ms);
  report.metric("warm_speedup", speedup);
  return report.finish(ok);
}
