// The machine-readable bench result line.
//
// Every bench binary times itself on the shared obs monotonic clock
// (obs::StopWatch — the same clock spans and service timings use) and
// emits exactly one line on stderr before exiting:
//
//   BENCH_<name>.json {"name":"<name>","ok":true,"wall_ms":12.3,...}
//
// JSON after the first space, so harnesses can `grep '^BENCH_'` and
// parse without touching the human-readable tables on stdout.
#pragma once

#include <cstdio>
#include <string>

#include "socet/obs/report.hpp"
#include "socet/obs/timer.hpp"

namespace socet::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Attach an extra numeric field to the JSON line.
  void metric(const std::string& key, double value) {
    extra_ += ",\"" + obs::json_escape(key) + "\":" + obs::json_number(value);
  }

  /// Mark this run as skipped: a gate that could not be evaluated on
  /// this host (too few CPUs, missing kernel feature, ...).  The line
  /// then carries `"skipped":true` so the regression gate
  /// (tools/socet_bench) records the point as non-comparable instead
  /// of a bogus pass in the trajectory.
  void skip(const std::string& reason) {
    skipped_ = true;
    if (!reason.empty()) {
      extra_ += ",\"skip_reason\":\"" + obs::json_escape(reason) + "\"";
    }
  }

  /// Print the line and map `ok` onto the process exit code.
  int finish(bool ok) const {
    std::fprintf(stderr,
                 "BENCH_%s.json {\"name\":\"%s\",\"ok\":%s%s,\"wall_ms\":%s%s}\n",
                 name_.c_str(), name_.c_str(), ok ? "true" : "false",
                 skipped_ ? ",\"skipped\":true" : "",
                 obs::json_number(watch_.elapsed_ms()).c_str(),
                 extra_.c_str());
    return ok ? 0 : 1;
  }

 private:
  std::string name_;
  std::string extra_;
  bool skipped_ = false;
  obs::StopWatch watch_;
};

}  // namespace socet::bench
