// The machine-readable bench result line.
//
// Every bench binary times itself on the shared obs monotonic clock
// (obs::StopWatch — the same clock spans and service timings use) and
// emits exactly one line on stderr before exiting:
//
//   BENCH_<name>.json {"name":"<name>","ok":true,"wall_ms":12.3,...}
//
// JSON after the first space, so harnesses can `grep '^BENCH_'` and
// parse without touching the human-readable tables on stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "socet/obs/report.hpp"
#include "socet/obs/timer.hpp"
#include "socet/obs/trace.hpp"

namespace socet::bench {

class BenchReport {
 public:
  /// When SOCET_BENCH_TRACE=<path> is set (socet_bench --capture-traces
  /// exports it on the attribution re-run), the whole bench records
  /// spans and writes a Chrome trace there on finish() — the input to
  /// `socet trace-analyze` / the gate's per-stage attribution table.
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    const char* path = std::getenv("SOCET_BENCH_TRACE");
    if (path != nullptr && path[0] != '\0') {
      trace_path_ = path;
      obs::set_trace_enabled(true);
    }
  }

  /// Attach an extra numeric field to the JSON line.
  void metric(const std::string& key, double value) {
    extra_ += ",\"" + obs::json_escape(key) + "\":" + obs::json_number(value);
  }

  /// Mark this run as skipped: a gate that could not be evaluated on
  /// this host (too few CPUs, missing kernel feature, ...).  The line
  /// then carries `"skipped":true` so the regression gate
  /// (tools/socet_bench) records the point as non-comparable instead
  /// of a bogus pass in the trajectory.
  void skip(const std::string& reason) {
    skipped_ = true;
    if (!reason.empty()) {
      extra_ += ",\"skip_reason\":\"" + obs::json_escape(reason) + "\"";
    }
  }

  /// Print the line and map `ok` onto the process exit code.
  int finish(bool ok) const {
    std::fprintf(stderr,
                 "BENCH_%s.json {\"name\":\"%s\",\"ok\":%s%s,\"wall_ms\":%s%s}\n",
                 name_.c_str(), name_.c_str(), ok ? "true" : "false",
                 skipped_ ? ",\"skipped\":true" : "",
                 obs::json_number(watch_.elapsed_ms()).c_str(),
                 extra_.c_str());
    if (!trace_path_.empty()) {
      std::FILE* out = std::fopen(trace_path_.c_str(), "w");
      if (out != nullptr) {
        const std::string trace = obs::chrome_trace_json();
        std::fwrite(trace.data(), 1, trace.size(), out);
        std::fclose(out);
      }
    }
    return ok ? 0 : 1;
  }

 private:
  std::string name_;
  std::string extra_;
  std::string trace_path_;
  bool skipped_ = false;
  obs::StopWatch watch_;
};

}  // namespace socet::bench
