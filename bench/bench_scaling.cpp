// Scaling benchmarks over fixed work units.
//
// Workloads:
//   * register-chain core -> RCG extraction + version synthesis;
//   * a pipeline of pass-through cores -> CCG planning with reservations;
//   * System 1 design-space enumeration;
//   * parallel-pattern fault simulation: the seed-equivalent kernel
//     (one 64-pattern word, full good-machine sweeps, one thread)
//     against the multi-lane partitioned kernels (512-pattern blocks,
//     event-driven good machine, AVX2 when the CPU has it, all cores).
//
// Each workload runs a fixed number of iterations under std::chrono, so
// the bench's wall time moves when the kernels get faster.  (The old
// google-benchmark version auto-scaled its iteration counts to a fixed
// measurement budget, which pinned wall time near ~12 s no matter what
// the code did — kernel wins were invisible to the regression gate.)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

#include "socet/core/core.hpp"
#include "socet/faultsim/parallel_sim.hpp"
#include "socet/faultsim/scan_sim.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/rng.hpp"

namespace {

using namespace socet;

template <typename F>
double time_ms(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// A core with a scan-friendly chain of `depth` registers.
rtl::Netlist make_chain_core(const std::string& name, unsigned depth) {
  rtl::Netlist n(name);
  auto in = n.add_input("IN", 8);
  auto out = n.add_output("OUT", 8);
  rtl::PinRef prev = n.pin(in);
  for (unsigned i = 0; i < depth; ++i) {
    auto r = n.add_register("R" + std::to_string(i), 8);
    auto m = n.add_mux("M" + std::to_string(i), 8, 2);
    auto k = n.add_constant("K" + std::to_string(i), util::BitVector(8, 0));
    n.connect(prev, n.mux_in(m, 0));
    n.connect(n.const_out(k), n.mux_in(m, 1));
    n.connect(n.mux_out(m), n.reg_d(r));
    prev = n.reg_q(r);
  }
  n.connect(prev, n.pin(out));
  return n;
}

double bench_core_preparation(unsigned depth, unsigned iterations) {
  return time_ms([&] {
    for (unsigned i = 0; i < iterations; ++i) {
      auto core = core::Core::prepare(make_chain_core("chain", depth));
      if (core.version_count() == 0) std::abort();
    }
  });
}

double bench_chip_planning(unsigned cores, unsigned iterations) {
  std::vector<core::Core> prepared;
  prepared.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    prepared.push_back(
        core::Core::prepare(make_chain_core("c" + std::to_string(i), 4)));
    prepared.back().set_scan_vectors(50);
  }
  soc::Soc soc("pipeline");
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  for (unsigned i = 0; i < cores; ++i) soc.add_core(&prepared[i]);
  soc.connect(pi, 0, "IN");
  for (unsigned i = 0; i + 1 < cores; ++i) soc.connect(i, "OUT", i + 1, "IN");
  soc.connect(cores - 1, "OUT", po);

  const std::vector<unsigned> selection(cores, 0);
  return time_ms([&] {
    for (unsigned i = 0; i < iterations; ++i) {
      auto plan = soc::plan_chip_test(soc, selection);
      if (plan.total_tat <= 0) std::abort();
    }
  });
}

double bench_design_space(unsigned iterations) {
  return time_ms([&] {
    for (unsigned i = 0; i < iterations; ++i) {
      auto system = systems::make_barcode_system();
      auto points = opt::enumerate_design_space(*system.soc);
      if (points.empty()) std::abort();
    }
  });
}

/// Random layered DAG (deterministic via seed) sized so fault simulation
/// dominates the fault-sim workload.
gate::GateNetlist make_random_netlist(util::Rng& rng, std::size_t n_inputs,
                                      std::size_t n_dffs,
                                      std::size_t n_gates) {
  gate::GateNetlist n("scalebench");
  std::vector<gate::GateId> nodes;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  }
  std::vector<gate::GateId> dffs;
  for (std::size_t i = 0; i < n_dffs; ++i) {
    dffs.push_back(n.add_dff_floating("q" + std::to_string(i)));
    nodes.push_back(dffs.back());
  }
  static const gate::GateKind kKinds[] = {
      gate::GateKind::kAnd,  gate::GateKind::kOr,  gate::GateKind::kNand,
      gate::GateKind::kNor,  gate::GateKind::kXor, gate::GateKind::kXnor,
      gate::GateKind::kNot,  gate::GateKind::kBuf};
  for (std::size_t i = 0; i < n_gates; ++i) {
    const gate::GateKind kind = kKinds[rng.next_below(8)];
    const bool unary =
        kind == gate::GateKind::kNot || kind == gate::GateKind::kBuf;
    // Bias fanins toward recent nodes to get deep, narrow cones.
    auto pick = [&]() -> gate::GateId {
      const std::size_t window = std::min<std::size_t>(nodes.size(), 256);
      return nodes[nodes.size() - 1 - rng.next_below(window)];
    };
    std::vector<gate::GateId> fanin{pick()};
    if (!unary) {
      fanin.push_back(pick());
      if (fanin[0] == fanin[1]) fanin[1] = nodes[0];
    }
    nodes.push_back(n.add_gate(kind, fanin, "g" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n_dffs; ++i) {
    n.set_dff_input(dffs[i], nodes[nodes.size() - 1 - rng.next_below(16)]);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const gate::GateId g = nodes[nodes.size() - 1 - rng.next_below(n_gates / 2)];
    if (n.gate(g).kind != gate::GateKind::kDff) n.mark_output(g);
  }
  n.mark_output(nodes.back());
  return n;
}

struct FaultSimResult {
  double seed_ms = 0;   ///< seed-equivalent kernel configuration
  double fast_ms = 0;   ///< multi-lane partitioned configuration
  bool identical = false;
  unsigned threads = 0;
  std::string kernel;
};

FaultSimResult bench_faultsim(unsigned iterations) {
  util::Rng rng(0xC0DE);
  const auto netlist = make_random_netlist(rng, 64, 48, 3000);
  const auto faults = faultsim::enumerate_faults(netlist);
  std::vector<faultsim::ScanPattern> patterns(768);
  for (auto& p : patterns) {
    p.pi = util::BitVector::random(netlist.inputs().size(), rng);
    p.ppi = util::BitVector::random(netlist.dffs().size(), rng);
  }

  FaultSimResult r;
  std::vector<faultsim::FaultStatus> seed_statuses;
  std::vector<faultsim::FaultStatus> fast_statuses;

  // One simulator per configuration, reused across iterations: that is
  // how the ATPG regrade loops drive it (the fanout-cone cache amortizes
  // over runs), and the seed simulator cached its cones the same way.
  // Construction still sits inside the timed region so cone building is
  // paid by both sides.
  r.seed_ms = time_ms([&] {
    faultsim::ScanSimOptions o;
    o.lane_words = 1;       // one 64-pattern word per pass, like the seed
    o.use_avx2 = false;
    o.event_driven = false;       // full good-machine sweep per block
    o.replay_suppression = false;  // seed re-evaluated entire cones
    faultsim::ScanFaultSim sim(netlist, o);
    for (unsigned i = 0; i < iterations; ++i) {
      seed_statuses.assign(faults.size(),
                           faultsim::FaultStatus::kUndetected);
      sim.run(faults, patterns, seed_statuses);
    }
  });

  r.fast_ms = time_ms([&] {
    faultsim::ParallelSimOptions o;
    o.threads = 0;  // hardware concurrency
    faultsim::ParallelScanFaultSim sim(netlist, o);
    for (unsigned i = 0; i < iterations; ++i) {
      fast_statuses.assign(faults.size(),
                           faultsim::FaultStatus::kUndetected);
      sim.run(faults, patterns, fast_statuses);
      r.threads = sim.last_threads();
      r.kernel = sim.last_kernel();
    }
  });

  r.identical = seed_statuses == fast_statuses;
  return r;
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("scaling");
  bench::print_header("scaling (fixed work)",
                      "algorithmic scaling + fault-sim kernel speed");

  const double core_prep_ms = bench_core_preparation(64, 3);
  const double chip_plan_ms = bench_chip_planning(32, 3);
  const double explore_ms = bench_design_space(2);
  const FaultSimResult fs = bench_faultsim(3);
  const double speedup = fs.fast_ms > 0 ? fs.seed_ms / fs.fast_ms : 0;

  util::Table table({"workload", "work", "time (ms)"});
  table.add_row({"core preparation", "3x depth-64 chain",
                 util::Table::num(core_prep_ms, 1)});
  table.add_row({"chip planning", "3x 32-core pipeline",
                 util::Table::num(chip_plan_ms, 1)});
  table.add_row({"design-space enumeration", "2x System 1",
                 util::Table::num(explore_ms, 1)});
  table.add_row({"fault sim, seed kernel", "3x 3k gates, 768 pat",
                 util::Table::num(fs.seed_ms, 1)});
  table.add_row({"fault sim, lane kernel",
                 "same (" + fs.kernel + ", " + std::to_string(fs.threads) +
                     " thr)",
                 util::Table::num(fs.fast_ms, 1)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf("fault-sim kernel speedup: %.2fx (statuses identical: %s)\n",
              speedup, fs.identical ? "yes" : "no");

  bench_report.metric("core_prep_ms", core_prep_ms);
  bench_report.metric("chip_plan_ms", chip_plan_ms);
  bench_report.metric("explore_ms", explore_ms);
  bench_report.metric("faultsim_seed_ms", fs.seed_ms);
  bench_report.metric("faultsim_fast_ms", fs.fast_ms);
  bench_report.metric("faultsim_speedup", speedup);
  bench_report.metric("faultsim_threads", fs.threads);

  // Shape gate: the lane kernels must beat the seed-equivalent kernel
  // and agree with it bit for bit.  The 1.5x floor is deliberately well
  // under typical (lane width alone is worth several x) so the gate
  // survives loaded CI machines; the trajectory files track the real
  // numbers.
  const bool ok = fs.identical && speedup >= 1.5;
  std::printf("shape check (identical statuses, >=1.5x kernel speedup): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
