// Scaling micro-benchmarks (google-benchmark): how the core-level and
// chip-level algorithms grow with design size.
//
// Synthetic workloads:
//   * register chains of length N -> RCG extraction + version synthesis;
//   * pipelines of N pass-through cores -> CCG planning with reservations;
//   * the full System 1 flow end to end.
#include <benchmark/benchmark.h>

#include "report.hpp"

#include "socet/core/core.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"

namespace {

using namespace socet;

/// A core with a scan-friendly chain of `depth` registers.
rtl::Netlist make_chain_core(const std::string& name, unsigned depth) {
  rtl::Netlist n(name);
  auto in = n.add_input("IN", 8);
  auto out = n.add_output("OUT", 8);
  rtl::PinRef prev = n.pin(in);
  for (unsigned i = 0; i < depth; ++i) {
    auto r = n.add_register("R" + std::to_string(i), 8);
    auto m = n.add_mux("M" + std::to_string(i), 8, 2);
    auto k = n.add_constant("K" + std::to_string(i), util::BitVector(8, 0));
    n.connect(prev, n.mux_in(m, 0));
    n.connect(n.const_out(k), n.mux_in(m, 1));
    n.connect(n.mux_out(m), n.reg_d(r));
    prev = n.reg_q(r);
  }
  n.connect(prev, n.pin(out));
  return n;
}

void BM_CorePreparation(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto core = core::Core::prepare(make_chain_core("chain", depth));
    benchmark::DoNotOptimize(core.version_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CorePreparation)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ChipPlanning(benchmark::State& state) {
  const unsigned cores = static_cast<unsigned>(state.range(0));
  std::vector<core::Core> prepared;
  prepared.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    prepared.push_back(
        core::Core::prepare(make_chain_core("c" + std::to_string(i), 4)));
    prepared.back().set_scan_vectors(50);
  }
  soc::Soc soc("pipeline");
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  for (unsigned i = 0; i < cores; ++i) soc.add_core(&prepared[i]);
  soc.connect(pi, 0, "IN");
  for (unsigned i = 0; i + 1 < cores; ++i) soc.connect(i, "OUT", i + 1, "IN");
  soc.connect(cores - 1, "OUT", po);

  const std::vector<unsigned> selection(cores, 0);
  for (auto _ : state) {
    auto plan = soc::plan_chip_test(soc, selection);
    benchmark::DoNotOptimize(plan.total_tat);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChipPlanning)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_System1FullExploration(benchmark::State& state) {
  for (auto _ : state) {
    auto system = systems::make_barcode_system();
    auto points = opt::enumerate_design_space(*system.soc);
    benchmark::DoNotOptimize(points.size());
  }
}
BENCHMARK(BM_System1FullExploration);

void BM_System1MinimizeTat(benchmark::State& state) {
  auto system = systems::make_barcode_system();
  for (auto _ : state) {
    auto best = opt::minimize_tat(*system.soc, 1'000'000);
    benchmark::DoNotOptimize(best.tat);
  }
}
BENCHMARK(BM_System1MinimizeTat);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the binary emits the same
// machine-readable BENCH_*.json line as every other bench.
int main(int argc, char** argv) {
  socet::bench::BenchReport bench_report("scaling");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return bench_report.finish(false);
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return bench_report.finish(true);
}
