// Figure 6: transparency latency vs overhead trade-off for the CPU core.
//
// The paper's table (after its own reconstruction of Navabi's CPU):
//   Version 1:  D->A(7-0)=6, D->A(11-8)=2, D->A(11-0)=8, overhead  3 cells
//   Version 2:  D->A(7-0)=1, D->A(11-8)=2, D->A(11-0)=3, overhead 10 cells
//   Version 3:  D->A(7-0)=1, D->A(11-8)=1, D->A(11-0)=2, overhead 30 cells
//
// Our reconstruction exposes the same Data / Address(7..0) / Address(11..8)
// interface; exact latencies differ where the reconstructed mux topology
// differs (documented in EXPERIMENTS.md), but the menu's defining shape —
// monotonically falling latency bought with monotonically rising cells —
// must hold.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("fig6_cpu_versions");
  using namespace socet;
  bench::print_header("CPU version menu", "Figure 6");

  core::Core cpu = core::Core::prepare(systems::make_cpu_rtl());
  const auto data = cpu.netlist().find_port("Data");
  const auto alo = cpu.netlist().find_port("AddrLo");
  const auto ahi = cpu.netlist().find_port("AddrHi");

  util::Table table({"CPU", "D->A(7-0)", "D->A(11-8)", "D->A(11-0) total",
                     "Overhead (cells)"});
  for (const auto& version : cpu.versions()) {
    auto lo = version.latency(data, alo);
    auto hi = version.latency(data, ahi);
    table.add_row({version.name, lo ? std::to_string(*lo) : "-",
                   hi ? std::to_string(*hi) : "-",
                   lo && hi ? std::to_string(version.total_latency_from(data))
                            : "-",
                   std::to_string(version.extra_cells)});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf("paper (Figure 6):\n"
              "  Version 1: 6 / 2 / 8, 3 cells\n"
              "  Version 2: 1 / 2 / 3, 10 cells\n"
              "  Version 3: 1 / 1 / 2, 30 cells\n\n");

  // Shape checks (exit nonzero if the trade-off collapsed): areas rise
  // strictly; every pair's latency is non-increasing along the menu; the
  // last version reaches latency 1 everywhere.
  const auto& versions = cpu.versions();
  bool ok = versions.size() == 3;
  for (std::size_t v = 1; ok && v < versions.size(); ++v) {
    ok = versions[v].extra_cells > versions[v - 1].extra_cells;
    for (const auto& prev_edge : versions[v - 1].edges) {
      auto now = versions[v].latency(prev_edge.input, prev_edge.output);
      ok = ok && now.has_value() && *now <= prev_edge.latency;
    }
  }
  for (const auto& edge : versions.back().edges) {
    ok = ok && edge.latency == 1;
  }
  std::printf("shape check (area rises, per-pair latency falls to 1): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
