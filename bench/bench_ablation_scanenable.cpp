// Ablation: what does chip-level test access buy?
//
// Three whole-chip functional measurements per system:
//   * no DFT at all;
//   * HSCAN chains present but unreachable (no test controller — the
//     paper's "HSCAN only" situation, Table 3);
//   * HSCAN chains plus ONE bonded test pin toggling ScanEnable.
//
// On a pipeline SOC whose end cores touch chip pins, the single pin
// stitches the per-core chains into a chip-spanning shift path and
// coverage jumps — demonstrating from the other direction why the paper's
// chip-level phase (transparency + test controller) is where the value
// is: core-level DFT alone is wasted silicon until something at chip
// level can reach it.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("ablation_scanenable");
  using namespace socet;
  bench::print_header("scan-access ablation", "Table 3 mechanism");

  util::Table table({"system", "no DFT FC%", "HSCAN unreachable FC%",
                     "HSCAN + SE pin FC%"});
  bool ok = true;
  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    auto none =
        bench::chip_sequential_coverage(system, bench::ChipMode::kNoDft);
    auto unreachable = bench::chip_sequential_coverage(
        system, bench::ChipMode::kHscanUnreachable);
    auto with_pin = bench::chip_sequential_coverage(
        system, bench::ChipMode::kHscanWithTestPin);
    table.add_row({system.soc->name(),
                   bench::fmt_pct(none.fault_coverage()),
                   bench::fmt_pct(unreachable.fault_coverage()),
                   bench::fmt_pct(with_pin.fault_coverage())});
    ok = ok && unreachable.fault_coverage() < 50.0;
    ok = ok && with_pin.fault_coverage() > unreachable.fault_coverage() + 20.0;
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check (unreachable chains stay low; one test pin "
              "unlocks >20 points of coverage): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
