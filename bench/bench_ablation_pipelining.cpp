// Extension study: pipelined transparency.
//
// The paper assumes test data cannot be pipelined through a core (two
// paths sharing logic serialize; a vector fully drains before the next
// enters), so the per-vector period is the full justification latency.
// With pipelining, after the first vector fills the path, a new vector
// can launch every initiation interval (bounded by the busiest shared
// resource):  TAT = fill + (V-1) x II + flush.
//
// This bench quantifies how much the assumption costs on both systems and
// across the version menus — the deeper (cheaper) the versions, the more
// pipelining would recover.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("ablation_pipelining");
  using namespace socet;
  bench::print_header("pipelined-transparency extension",
                      "Section 3 assumption relaxed");

  util::Table table({"system", "selection", "TAT (paper model)",
                     "TAT (pipelined)", "speedup"});
  bool ok = true;
  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    for (unsigned v = 0; v < 3; ++v) {
      std::vector<unsigned> selection(system.soc->cores().size(), v);
      soc::PlanOptions pipelined;
      pipelined.allow_pipelining = true;
      const auto base = soc::plan_chip_test(*system.soc, selection);
      const auto pipe = soc::plan_chip_test(*system.soc, selection, pipelined);
      const double speedup = static_cast<double>(base.total_tat) /
                             static_cast<double>(pipe.total_tat);
      table.add_row({system.soc->name(), "all V" + std::to_string(v + 1),
                     std::to_string(base.total_tat),
                     std::to_string(pipe.total_tat),
                     util::Table::num(speedup, 2) + "x"});
      ok = ok && pipe.total_tat <= base.total_tat;
      // Overheads are identical: pipelining is a scheduling change only.
      ok = ok &&
           pipe.total_overhead_cells() == base.total_overhead_cells();
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("shape check (pipelining never slower, never costs area): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
