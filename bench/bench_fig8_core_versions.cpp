// Figure 8: transparency latency / area trade-off menus for the
// PREPROCESSOR and DISPLAY cores.
//
// Paper values:
//   PREPROCESSOR (Fig. 8a):            DISPLAY (Fig. 8b):
//     Ver.1  NUM->DB=5 NUM->A=2  2c      Ver.1  D->OUT=2 A->OUT=3   5c
//     Ver.2  NUM->DB=1 NUM->A=2 19c      Ver.2  D->OUT=2 A->OUT=1  20c
//     Ver.3  NUM->DB=1 NUM->A=1 37c      Ver.3  D->OUT=1 A->OUT=1  55c
#include "common.hpp"

namespace {

using namespace socet;

unsigned best_latency_from(const transparency::CoreVersion& version,
                           rtl::PortId input) {
  unsigned best = 99;
  for (const auto& edge : version.edges) {
    if (edge.input == input) best = std::min(best, edge.latency);
  }
  return best;
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("fig8_core_versions");
  bench::print_header("PREPROCESSOR and DISPLAY version menus", "Figure 8");

  core::Core pre = core::Core::prepare(systems::make_preprocessor_rtl());
  const auto num = pre.netlist().find_port("NUM");
  const auto db = pre.netlist().find_port("DB");
  const auto addr = pre.netlist().find_port("Address");

  util::Table pre_table(
      {"PREPROCESSOR", "NUM->DB", "NUM->A", "Ovhd. (cells)"});
  for (const auto& version : pre.versions()) {
    auto to_db = version.latency(num, db);
    auto to_a = version.latency(num, addr);
    pre_table.add_row({version.name, to_db ? std::to_string(*to_db) : "-",
                       to_a ? std::to_string(*to_a) : "-",
                       std::to_string(version.extra_cells)});
  }
  std::printf("%s", pre_table.to_text().c_str());
  std::printf("paper: V1 5/2 (2c), V2 1/2 (19c), V3 1/1 (37c)\n\n");

  core::Core disp = core::Core::prepare(systems::make_display_rtl());
  const auto d = disp.netlist().find_port("D");
  const auto alo = disp.netlist().find_port("ALo");

  util::Table disp_table({"DISPLAY", "D->OUT", "A->OUT", "Ovhd. (cells)"});
  for (const auto& version : disp.versions()) {
    disp_table.add_row({version.name,
                        std::to_string(best_latency_from(version, d)),
                        std::to_string(best_latency_from(version, alo)),
                        std::to_string(version.extra_cells)});
  }
  std::printf("%s", disp_table.to_text().c_str());
  std::printf("paper: V1 2/3 (5c), V2 2/1 (20c), V3 1/1 (55c)\n\n");

  // Shape checks: the PREPROCESSOR's published latencies match exactly;
  // both menus are strict area ladders with non-increasing latencies.
  bool ok = true;
  ok = ok && pre.version(0).latency(num, db).value_or(0) == 5;
  ok = ok && pre.version(0).latency(num, addr).value_or(0) == 2;
  ok = ok && pre.version(1).latency(num, db).value_or(0) == 1;
  ok = ok && pre.version(2).latency(num, db).value_or(0) == 1;
  ok = ok && pre.version(2).latency(num, addr).value_or(0) == 1;
  // DISPLAY: version 1 is multi-cycle on both ports (our HSCAN chains give
  // A->OUT 2 where the paper's circuit took 3); version 2 recruits the
  // A -> PORT1 shortcut; version 3 is single-cycle everywhere.
  ok = ok && best_latency_from(disp.version(0), d) == 2;
  ok = ok && best_latency_from(disp.version(0), alo) >= 2;
  ok = ok && best_latency_from(disp.version(1), alo) == 1;
  ok = ok && best_latency_from(disp.version(2), d) == 1;
  for (const auto* core : {&pre, &disp}) {
    for (std::size_t v = 1; v < core->version_count(); ++v) {
      ok = ok && core->version(v).extra_cells >
                     core->version(v - 1).extra_cells;
    }
  }
  std::printf("shape check (menus match Figure 8's pattern): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
