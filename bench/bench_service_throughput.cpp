// Planning-service throughput: worker-pool scaling and cache hit-rate.
//
// Phase 1 runs a 64-job workload of *unique* jobs (cache disabled, so
// memoization cannot mask pool scaling) at 1/2/4/8 threads and reports
// jobs/sec and speedup over the single-thread run, verifying the batch
// output is byte-identical at every thread count.  Phase 2 runs a
// repeated workload (8 unique jobs x 8 copies) through a caching service
// and reports the hit-rate.
//
// Gates: determinism and a > 50% hit-rate always; the >= 2x speedup gate
// at 4 threads only when the host actually has >= 4 hardware threads
// (a single-CPU container cannot speed up CPU-bound work, and
// pretending otherwise would make the bench flaky instead of useful).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "report.hpp"
#include "socet/service/service.hpp"
#include "socet/util/table.hpp"

namespace {

using namespace socet;

std::vector<std::string> unique_workload() {
  std::vector<std::string> lines;
  for (unsigned a = 1; a <= 3; ++a) {
    for (unsigned b = 1; b <= 3; ++b) {
      for (unsigned c = 1; c <= 3; ++c) {
        lines.push_back("plan system=barcode selection=" + std::to_string(a) +
                        "," + std::to_string(b) + "," + std::to_string(c));
      }
    }
  }
  for (unsigned budget = 0; budget <= 100; budget += 20) {
    lines.push_back("optimize system=barcode area-budget=" +
                    std::to_string(budget));
    lines.push_back("optimize system=system2 area-budget=" +
                    std::to_string(budget));
  }
  for (unsigned seed = 1; seed <= 19; ++seed) {
    lines.push_back("plan system=synthetic:" + std::to_string(seed) + ":6");
  }
  lines.push_back("explore system=barcode");
  lines.push_back("explore system=system2");
  lines.push_back("parallel system=barcode");
  lines.push_back("parallel system=system2");
  lines.push_back("program system=barcode");
  lines.push_back("program system=system2");
  lines.resize(64);
  return lines;
}

std::vector<std::string> repeated_workload() {
  // 8 unique jobs x 8 copies, round-robin interleaved so a copy rarely
  // races its original while it is still in flight.
  const auto all = unique_workload();
  const std::vector<std::string> unique(all.begin(), all.begin() + 8);
  std::vector<std::string> lines;
  for (unsigned rep = 0; rep < 8; ++rep) {
    for (const auto& line : unique) lines.push_back(line);
  }
  return lines;
}

double best_of(unsigned runs, const std::vector<std::string>& lines,
               unsigned threads, std::string* records) {
  double best_ms = 0;
  for (unsigned r = 0; r < runs; ++r) {
    service::PlanningService svc({threads, /*cache_capacity=*/0});
    const auto report = svc.run_lines(lines);
    if (report.errors != 0) {
      std::printf("FAIL: %u errors at %u threads\n", report.errors, threads);
      std::exit(1);
    }
    if (r == 0) *records = report.records_text();
    if (r == 0 || report.wall_ms < best_ms) best_ms = report.wall_ms;
  }
  return best_ms;
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("service_throughput");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("service throughput, 64 unique jobs, cache off, best of 3 "
              "(host: %u hardware thread%s)\n",
              hw, hw == 1 ? "" : "s");

  const auto lines = unique_workload();
  bool ok = true;
  std::string baseline;
  double baseline_ms = 0;
  double speedup4 = 0;
  util::Table scaling({"threads", "wall (ms)", "jobs/sec", "speedup"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::string records;
    const double ms = best_of(3, lines, threads, &records);
    if (threads == 1) {
      baseline = records;
      baseline_ms = ms;
    } else if (records != baseline) {
      std::printf("FAIL: %u-thread records differ from 1-thread records\n",
                  threads);
      ok = false;
    }
    const double speedup = baseline_ms / ms;
    if (threads == 4) speedup4 = speedup;
    scaling.add_row({std::to_string(threads), util::Table::num(ms, 2),
                     util::Table::num(64.0 * 1000.0 / ms),
                     util::Table::num(speedup, 2) + "x"});
  }
  std::printf("%s", scaling.to_text().c_str());

  if (hw >= 4 && speedup4 < 2.0) {
    std::printf("FAIL: expected >= 2x speedup at 4 threads on a %u-thread "
                "host, got %.2fx\n",
                hw, speedup4);
    ok = false;
  } else if (hw < 4) {
    std::printf("note: speedup gate skipped (host has %u hardware "
                "thread%s; >= 4 needed for a meaningful 4-thread gate)\n",
                hw, hw == 1 ? "" : "s");
    // Mark the whole run as non-comparable so the regression gate
    // (tools/socet_bench) does not record a bogus trajectory point.
    bench_report.skip("host has < 4 hardware threads");
  }

  std::printf("\nrepeated workload, 8 unique jobs x 8 copies, cache on, "
              "4 threads\n");
  service::PlanningService cached({4, 4096});
  const auto report = cached.run_lines(repeated_workload());
  std::printf("%s", report.summary_table().c_str());
  if (report.errors != 0) {
    std::printf("FAIL: %u errors in repeated workload\n", report.errors);
    ok = false;
  }
  if (report.cache.hit_rate() <= 0.5) {
    std::printf("FAIL: cache hit-rate %.1f%% (want > 50%%)\n",
                report.cache.hit_rate() * 100.0);
    ok = false;
  }

  std::printf(ok ? "PASS\n" : "");
  bench_report.metric("baseline_ms", baseline_ms);
  bench_report.metric("speedup4", speedup4);
  bench_report.metric("hit_rate", report.cache.hit_rate());
  return bench_report.finish(ok);
}
