// Table 2: area overheads of SOCET vs FSCAN-BSCAN for both systems.
//
// Columns follow the paper: original chip area; core-level DFT overhead
// under FSCAN and HSCAN; chip-level DFT overhead under BSCAN and under
// SOCET (for the minimum-area and minimum-TAT design points); and the
// combined core+chip totals for FSCAN-BSCAN vs SOCET.
//
// Paper values (percent of original area):
//   System 1 (8,014 cells): FSCAN 18.8, HSCAN 10.1, BSCAN 5.2;
//     SOCET chip-level 2.0 (min area) / 3.8 (min TApp.);
//     totals: FSCAN-BSCAN 24.0, SOCET 12.1 / 13.9.
//   System 2 (5,540 cells): FSCAN 15.6, HSCAN 10.3, BSCAN 9.9;
//     SOCET chip-level 1.2 / 4.7; totals 25.5 vs 11.5 / 15.0.
#include "common.hpp"

namespace {

using namespace socet;

struct Row {
  std::string name;
  double orig_area;
  double fscan_pct, hscan_pct, bscan_pct;
  double socet_min_area_pct, socet_min_tat_pct;
  double fscan_bscan_total_pct, socet_total_min_area_pct,
      socet_total_min_tat_pct;
};

Row measure(systems::System& system) {
  Row row;
  row.name = system.soc->name();
  row.orig_area = bench::chip_area(system);

  double fscan_cells = 0;
  double hscan_cells = 0;
  for (const auto& core : system.cores) {
    fscan_cells += core->fscan_overhead_cells();
    hscan_cells += core->hscan_overhead_cells();
  }
  auto bscan = baselines::fscan_bscan(*system.soc);

  const auto min_area_plan = soc::plan_chip_test(
      *system.soc, std::vector<unsigned>(system.soc->cores().size(), 0));
  auto min_tat = opt::minimize_tat(*system.soc, 1'000'000);

  auto pct = [&row](double cells) { return 100.0 * cells / row.orig_area; };
  row.fscan_pct = pct(fscan_cells);
  row.hscan_pct = pct(hscan_cells);
  row.bscan_pct = pct(bscan.chip_level_cells);
  row.socet_min_area_pct = pct(min_area_plan.total_overhead_cells());
  row.socet_min_tat_pct = pct(min_tat.overhead_cells);
  row.fscan_bscan_total_pct = pct(fscan_cells + bscan.chip_level_cells);
  row.socet_total_min_area_pct =
      pct(hscan_cells + min_area_plan.total_overhead_cells());
  row.socet_total_min_tat_pct = pct(hscan_cells + min_tat.overhead_cells);
  return row;
}

}  // namespace

int main() {
  socet::bench::BenchReport bench_report("table2_area");
  bench::print_header("area overheads", "Table 2");

  auto system1 = systems::make_barcode_system();
  auto system2 = systems::make_system2();
  std::vector<Row> rows{measure(system1), measure(system2)};

  util::Table table({"Circuit", "Orig. Area (cells)", "FSCAN %", "HSCAN %",
                     "BSCAN %", "SOCET chip % (type)",
                     "FSCAN-BSCAN total %", "SOCET total %"});
  for (const auto& row : rows) {
    table.add_row({row.name, util::Table::num(row.orig_area, 0),
                   bench::fmt_pct(row.fscan_pct),
                   bench::fmt_pct(row.hscan_pct),
                   bench::fmt_pct(row.bscan_pct),
                   bench::fmt_pct(row.socet_min_area_pct) + " (Min. Area)",
                   bench::fmt_pct(row.fscan_bscan_total_pct),
                   bench::fmt_pct(row.socet_total_min_area_pct)});
    table.add_row({"", "", "", "", "",
                   bench::fmt_pct(row.socet_min_tat_pct) + " (Min. TApp.)",
                   bench::fmt_pct(row.fscan_bscan_total_pct),
                   bench::fmt_pct(row.socet_total_min_tat_pct)});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf(
      "paper:\n"
      "  System 1: 8014 | 18.8 | 10.1 | 5.2 | 2.0 / 3.8 | 24.0 | 12.1 / 13.9\n"
      "  System 2: 5540 | 15.6 | 10.3 | 9.9 | 1.2 / 4.7 | 25.5 | 11.5 / 15.0\n\n");

  bool ok = true;
  for (const auto& row : rows) {
    ok = ok && row.hscan_pct < row.fscan_pct;  // HSCAN cheaper than FSCAN
    // SOCET chip-level DFT far below boundary scan.
    ok = ok && row.socet_min_area_pct < row.bscan_pct;
    ok = ok && row.socet_min_tat_pct < row.bscan_pct;
    // Combined totals: SOCET well below FSCAN-BSCAN.
    ok = ok && row.socet_total_min_area_pct < row.fscan_bscan_total_pct;
    ok = ok && row.socet_total_min_tat_pct < row.fscan_bscan_total_pct;
  }
  std::printf("shape check (HSCAN<FSCAN, SOCET chip<BSCAN, totals win): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
