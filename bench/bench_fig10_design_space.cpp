// Figure 10: chip test application time vs chip-level DFT area overhead
// across the full design space of core-version combinations (System 1).
//
// The paper plots 18 design points (3 CPU x 3 PREPROCESSOR x 2 distinct
// DISPLAY versions); the reconstruction enumerates the full 3x3x3 = 27
// lattice and prints the scatter plus the Pareto frontier.  The headline
// shape: roughly 4.5x TAT reduction between the minimum-area point and
// the fastest point, for about 2x the (small) chip-level overhead.
#include "common.hpp"

int main() {
  socet::bench::BenchReport bench_report("fig10_design_space");
  using namespace socet;
  bench::print_header("System 1 design-space exploration", "Figure 10");

  auto system = systems::make_barcode_system();
  auto points = opt::enumerate_design_space(*system.soc);

  util::Table table({"point", "CPU", "PRE", "DISP", "A.Ov. (cells)",
                     "TApp. (cycles)", "pareto"});
  auto front = opt::pareto_front(points);
  auto on_front = [&front](const opt::DesignPoint& p) {
    for (const auto& f : front) {
      if (f.selection == p.selection) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    table.add_row({std::to_string(i + 1),
                   "V" + std::to_string(p.selection[0] + 1),
                   "V" + std::to_string(p.selection[1] + 1),
                   "V" + std::to_string(p.selection[2] + 1),
                   std::to_string(p.overhead_cells), std::to_string(p.tat),
                   on_front(p) ? "*" : ""});
  }
  std::printf("%s\n", table.to_text().c_str());

  const auto& cheapest = points.front();
  const auto& fastest = front.back();
  std::printf("min-area point: %u cells, %llu cycles\n",
              cheapest.overhead_cells, cheapest.tat);
  std::printf("min-TAT point:  %u cells, %llu cycles\n",
              fastest.overhead_cells, fastest.tat);
  std::printf("TAT spread: %.2fx for %.2fx area "
              "(paper: ~4.5x TAT for ~2.1x area)\n\n",
              static_cast<double>(cheapest.tat) /
                  static_cast<double>(fastest.tat),
              static_cast<double>(fastest.overhead_cells) /
                  static_cast<double>(cheapest.overhead_cells));

  // The paper's companion observation (design point 17 vs 18): the
  // all-minimum-latency configuration is not necessarily the fastest.
  std::vector<unsigned> all_fast(system.soc->cores().size());
  for (std::uint32_t c = 0; c < all_fast.size(); ++c) {
    all_fast[c] =
        static_cast<unsigned>(system.soc->core(c).version_count() - 1);
  }
  auto all_fast_plan = soc::plan_chip_test(*system.soc, all_fast);
  std::printf("all-min-latency configuration: %llu cycles; exploration "
              "found %llu cycles %s\n\n",
              all_fast_plan.total_tat, fastest.tat,
              fastest.tat <= all_fast_plan.total_tat
                  ? "(<=: exploration matters, as in Table 1's point 17)"
                  : "(worse: unexpected)");

  std::printf("CSV scatter (area_cells,tat_cycles):\n");
  for (const auto& p : points) {
    std::printf("%u,%llu\n", p.overhead_cells, p.tat);
  }

  const bool ok = points.size() == 27 &&
                  cheapest.tat > 2 * fastest.tat &&
                  fastest.overhead_cells > cheapest.overhead_cells &&
                  fastest.tat <= all_fast_plan.total_tat;
  std::printf("\nshape check (27 points, >2x TAT spread, exploration >= "
              "all-fast): %s\n",
              ok ? "PASS" : "FAIL");
  return bench_report.finish(ok);
}
