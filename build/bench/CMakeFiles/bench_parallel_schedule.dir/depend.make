# Empty dependencies file for bench_parallel_schedule.
# This may be replaced when dependencies are built.
