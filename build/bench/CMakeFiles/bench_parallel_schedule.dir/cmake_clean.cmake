file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_schedule.dir/bench_parallel_schedule.cpp.o"
  "CMakeFiles/bench_parallel_schedule.dir/bench_parallel_schedule.cpp.o.d"
  "bench_parallel_schedule"
  "bench_parallel_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
