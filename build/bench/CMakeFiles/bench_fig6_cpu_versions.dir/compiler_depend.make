# Empty compiler generated dependencies file for bench_fig6_cpu_versions.
# This may be replaced when dependencies are built.
