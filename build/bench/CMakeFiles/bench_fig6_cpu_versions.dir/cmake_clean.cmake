file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cpu_versions.dir/bench_fig6_cpu_versions.cpp.o"
  "CMakeFiles/bench_fig6_cpu_versions.dir/bench_fig6_cpu_versions.cpp.o.d"
  "bench_fig6_cpu_versions"
  "bench_fig6_cpu_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cpu_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
