# Empty compiler generated dependencies file for bench_related_dft.
# This may be replaced when dependencies are built.
