file(REMOVE_RECURSE
  "CMakeFiles/bench_related_dft.dir/bench_related_dft.cpp.o"
  "CMakeFiles/bench_related_dft.dir/bench_related_dft.cpp.o.d"
  "bench_related_dft"
  "bench_related_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
