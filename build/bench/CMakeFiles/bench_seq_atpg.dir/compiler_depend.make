# Empty compiler generated dependencies file for bench_seq_atpg.
# This may be replaced when dependencies are built.
