file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_atpg.dir/bench_seq_atpg.cpp.o"
  "CMakeFiles/bench_seq_atpg.dir/bench_seq_atpg.cpp.o.d"
  "bench_seq_atpg"
  "bench_seq_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
