# Empty dependencies file for bench_ablation_scanenable.
# This may be replaced when dependencies are built.
