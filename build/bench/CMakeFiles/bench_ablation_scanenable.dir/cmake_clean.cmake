file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scanenable.dir/bench_ablation_scanenable.cpp.o"
  "CMakeFiles/bench_ablation_scanenable.dir/bench_ablation_scanenable.cpp.o.d"
  "bench_ablation_scanenable"
  "bench_ablation_scanenable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scanenable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
