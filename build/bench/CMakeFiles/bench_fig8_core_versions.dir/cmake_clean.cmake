file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_core_versions.dir/bench_fig8_core_versions.cpp.o"
  "CMakeFiles/bench_fig8_core_versions.dir/bench_fig8_core_versions.cpp.o.d"
  "bench_fig8_core_versions"
  "bench_fig8_core_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_core_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
