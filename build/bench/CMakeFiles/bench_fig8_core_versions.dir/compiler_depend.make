# Empty compiler generated dependencies file for bench_fig8_core_versions.
# This may be replaced when dependencies are built.
