# Empty dependencies file for bench_worked_example.
# This may be replaced when dependencies are built.
