file(REMOVE_RECURSE
  "CMakeFiles/bench_worked_example.dir/bench_worked_example.cpp.o"
  "CMakeFiles/bench_worked_example.dir/bench_worked_example.cpp.o.d"
  "bench_worked_example"
  "bench_worked_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worked_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
