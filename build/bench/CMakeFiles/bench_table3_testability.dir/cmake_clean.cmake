file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_testability.dir/bench_table3_testability.cpp.o"
  "CMakeFiles/bench_table3_testability.dir/bench_table3_testability.cpp.o.d"
  "bench_table3_testability"
  "bench_table3_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
