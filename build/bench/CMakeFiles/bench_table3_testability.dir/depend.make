# Empty dependencies file for bench_table3_testability.
# This may be replaced when dependencies are built.
