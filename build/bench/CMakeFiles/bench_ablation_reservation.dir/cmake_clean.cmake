file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reservation.dir/bench_ablation_reservation.cpp.o"
  "CMakeFiles/bench_ablation_reservation.dir/bench_ablation_reservation.cpp.o.d"
  "bench_ablation_reservation"
  "bench_ablation_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
