# Empty compiler generated dependencies file for bench_fig10_design_space.
# This may be replaced when dependencies are built.
