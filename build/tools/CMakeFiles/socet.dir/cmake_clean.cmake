file(REMOVE_RECURSE
  "CMakeFiles/socet.dir/socet_cli.cpp.o"
  "CMakeFiles/socet.dir/socet_cli.cpp.o.d"
  "socet"
  "socet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
