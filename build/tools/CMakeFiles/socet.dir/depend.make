# Empty dependencies file for socet.
# This may be replaced when dependencies are built.
