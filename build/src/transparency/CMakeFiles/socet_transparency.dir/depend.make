# Empty dependencies file for socet_transparency.
# This may be replaced when dependencies are built.
