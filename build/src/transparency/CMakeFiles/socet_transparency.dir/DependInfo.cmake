
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transparency/rcg.cpp" "src/transparency/CMakeFiles/socet_transparency.dir/rcg.cpp.o" "gcc" "src/transparency/CMakeFiles/socet_transparency.dir/rcg.cpp.o.d"
  "/root/repo/src/transparency/search.cpp" "src/transparency/CMakeFiles/socet_transparency.dir/search.cpp.o" "gcc" "src/transparency/CMakeFiles/socet_transparency.dir/search.cpp.o.d"
  "/root/repo/src/transparency/versions.cpp" "src/transparency/CMakeFiles/socet_transparency.dir/versions.cpp.o" "gcc" "src/transparency/CMakeFiles/socet_transparency.dir/versions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/socet_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hscan/CMakeFiles/socet_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
