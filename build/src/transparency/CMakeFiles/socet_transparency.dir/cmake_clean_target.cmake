file(REMOVE_RECURSE
  "libsocet_transparency.a"
)
