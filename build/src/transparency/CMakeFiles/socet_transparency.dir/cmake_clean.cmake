file(REMOVE_RECURSE
  "CMakeFiles/socet_transparency.dir/rcg.cpp.o"
  "CMakeFiles/socet_transparency.dir/rcg.cpp.o.d"
  "CMakeFiles/socet_transparency.dir/search.cpp.o"
  "CMakeFiles/socet_transparency.dir/search.cpp.o.d"
  "CMakeFiles/socet_transparency.dir/versions.cpp.o"
  "CMakeFiles/socet_transparency.dir/versions.cpp.o.d"
  "libsocet_transparency.a"
  "libsocet_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
