file(REMOVE_RECURSE
  "libsocet_rtl.a"
)
