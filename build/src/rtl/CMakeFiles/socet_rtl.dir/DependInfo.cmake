
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/instantiate.cpp" "src/rtl/CMakeFiles/socet_rtl.dir/instantiate.cpp.o" "gcc" "src/rtl/CMakeFiles/socet_rtl.dir/instantiate.cpp.o.d"
  "/root/repo/src/rtl/interpreter.cpp" "src/rtl/CMakeFiles/socet_rtl.dir/interpreter.cpp.o" "gcc" "src/rtl/CMakeFiles/socet_rtl.dir/interpreter.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/socet_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/socet_rtl.dir/netlist.cpp.o.d"
  "/root/repo/src/rtl/paths.cpp" "src/rtl/CMakeFiles/socet_rtl.dir/paths.cpp.o" "gcc" "src/rtl/CMakeFiles/socet_rtl.dir/paths.cpp.o.d"
  "/root/repo/src/rtl/text.cpp" "src/rtl/CMakeFiles/socet_rtl.dir/text.cpp.o" "gcc" "src/rtl/CMakeFiles/socet_rtl.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
