# Empty compiler generated dependencies file for socet_rtl.
# This may be replaced when dependencies are built.
