file(REMOVE_RECURSE
  "CMakeFiles/socet_rtl.dir/instantiate.cpp.o"
  "CMakeFiles/socet_rtl.dir/instantiate.cpp.o.d"
  "CMakeFiles/socet_rtl.dir/interpreter.cpp.o"
  "CMakeFiles/socet_rtl.dir/interpreter.cpp.o.d"
  "CMakeFiles/socet_rtl.dir/netlist.cpp.o"
  "CMakeFiles/socet_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/socet_rtl.dir/paths.cpp.o"
  "CMakeFiles/socet_rtl.dir/paths.cpp.o.d"
  "CMakeFiles/socet_rtl.dir/text.cpp.o"
  "CMakeFiles/socet_rtl.dir/text.cpp.o.d"
  "libsocet_rtl.a"
  "libsocet_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
