file(REMOVE_RECURSE
  "CMakeFiles/socet_core.dir/core.cpp.o"
  "CMakeFiles/socet_core.dir/core.cpp.o.d"
  "CMakeFiles/socet_core.dir/serialize.cpp.o"
  "CMakeFiles/socet_core.dir/serialize.cpp.o.d"
  "libsocet_core.a"
  "libsocet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
