file(REMOVE_RECURSE
  "libsocet_core.a"
)
