# Empty compiler generated dependencies file for socet_core.
# This may be replaced when dependencies are built.
