file(REMOVE_RECURSE
  "libsocet_opt.a"
)
