# Empty dependencies file for socet_opt.
# This may be replaced when dependencies are built.
