file(REMOVE_RECURSE
  "CMakeFiles/socet_opt.dir/optimize.cpp.o"
  "CMakeFiles/socet_opt.dir/optimize.cpp.o.d"
  "libsocet_opt.a"
  "libsocet_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
