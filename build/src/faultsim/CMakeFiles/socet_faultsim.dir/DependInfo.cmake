
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/diagnosis.cpp" "src/faultsim/CMakeFiles/socet_faultsim.dir/diagnosis.cpp.o" "gcc" "src/faultsim/CMakeFiles/socet_faultsim.dir/diagnosis.cpp.o.d"
  "/root/repo/src/faultsim/faults.cpp" "src/faultsim/CMakeFiles/socet_faultsim.dir/faults.cpp.o" "gcc" "src/faultsim/CMakeFiles/socet_faultsim.dir/faults.cpp.o.d"
  "/root/repo/src/faultsim/scan_sim.cpp" "src/faultsim/CMakeFiles/socet_faultsim.dir/scan_sim.cpp.o" "gcc" "src/faultsim/CMakeFiles/socet_faultsim.dir/scan_sim.cpp.o.d"
  "/root/repo/src/faultsim/seq_sim.cpp" "src/faultsim/CMakeFiles/socet_faultsim.dir/seq_sim.cpp.o" "gcc" "src/faultsim/CMakeFiles/socet_faultsim.dir/seq_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gate/CMakeFiles/socet_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
