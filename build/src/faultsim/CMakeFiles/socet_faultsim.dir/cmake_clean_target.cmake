file(REMOVE_RECURSE
  "libsocet_faultsim.a"
)
