file(REMOVE_RECURSE
  "CMakeFiles/socet_faultsim.dir/diagnosis.cpp.o"
  "CMakeFiles/socet_faultsim.dir/diagnosis.cpp.o.d"
  "CMakeFiles/socet_faultsim.dir/faults.cpp.o"
  "CMakeFiles/socet_faultsim.dir/faults.cpp.o.d"
  "CMakeFiles/socet_faultsim.dir/scan_sim.cpp.o"
  "CMakeFiles/socet_faultsim.dir/scan_sim.cpp.o.d"
  "CMakeFiles/socet_faultsim.dir/seq_sim.cpp.o"
  "CMakeFiles/socet_faultsim.dir/seq_sim.cpp.o.d"
  "libsocet_faultsim.a"
  "libsocet_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
