# Empty dependencies file for socet_faultsim.
# This may be replaced when dependencies are built.
