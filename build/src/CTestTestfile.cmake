# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("rtl")
subdirs("gate")
subdirs("synth")
subdirs("faultsim")
subdirs("atpg")
subdirs("hscan")
subdirs("transparency")
subdirs("core")
subdirs("soc")
subdirs("opt")
subdirs("baselines")
subdirs("bist")
subdirs("emit")
subdirs("systems")
