file(REMOVE_RECURSE
  "CMakeFiles/socet_baselines.dir/baselines.cpp.o"
  "CMakeFiles/socet_baselines.dir/baselines.cpp.o.d"
  "libsocet_baselines.a"
  "libsocet_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
