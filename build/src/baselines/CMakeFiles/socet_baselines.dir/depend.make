# Empty dependencies file for socet_baselines.
# This may be replaced when dependencies are built.
