file(REMOVE_RECURSE
  "libsocet_baselines.a"
)
