file(REMOVE_RECURSE
  "libsocet_hscan.a"
)
