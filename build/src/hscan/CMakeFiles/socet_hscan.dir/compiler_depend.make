# Empty compiler generated dependencies file for socet_hscan.
# This may be replaced when dependencies are built.
