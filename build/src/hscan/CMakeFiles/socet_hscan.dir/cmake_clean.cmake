file(REMOVE_RECURSE
  "CMakeFiles/socet_hscan.dir/hscan.cpp.o"
  "CMakeFiles/socet_hscan.dir/hscan.cpp.o.d"
  "libsocet_hscan.a"
  "libsocet_hscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_hscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
