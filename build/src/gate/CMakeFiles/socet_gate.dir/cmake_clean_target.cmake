file(REMOVE_RECURSE
  "libsocet_gate.a"
)
