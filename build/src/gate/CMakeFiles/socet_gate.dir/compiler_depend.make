# Empty compiler generated dependencies file for socet_gate.
# This may be replaced when dependencies are built.
