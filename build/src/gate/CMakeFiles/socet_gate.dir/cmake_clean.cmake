file(REMOVE_RECURSE
  "CMakeFiles/socet_gate.dir/netlist.cpp.o"
  "CMakeFiles/socet_gate.dir/netlist.cpp.o.d"
  "CMakeFiles/socet_gate.dir/sim.cpp.o"
  "CMakeFiles/socet_gate.dir/sim.cpp.o.d"
  "libsocet_gate.a"
  "libsocet_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
