file(REMOVE_RECURSE
  "libsocet_atpg.a"
)
