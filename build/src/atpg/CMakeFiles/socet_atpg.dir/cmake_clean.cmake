file(REMOVE_RECURSE
  "CMakeFiles/socet_atpg.dir/atpg.cpp.o"
  "CMakeFiles/socet_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/socet_atpg.dir/podem.cpp.o"
  "CMakeFiles/socet_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/socet_atpg.dir/sequential.cpp.o"
  "CMakeFiles/socet_atpg.dir/sequential.cpp.o.d"
  "libsocet_atpg.a"
  "libsocet_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
