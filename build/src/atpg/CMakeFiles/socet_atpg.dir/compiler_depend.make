# Empty compiler generated dependencies file for socet_atpg.
# This may be replaced when dependencies are built.
