# Empty dependencies file for socet_util.
# This may be replaced when dependencies are built.
