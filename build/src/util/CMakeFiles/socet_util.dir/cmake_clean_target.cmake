file(REMOVE_RECURSE
  "libsocet_util.a"
)
