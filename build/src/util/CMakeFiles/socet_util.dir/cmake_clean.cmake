file(REMOVE_RECURSE
  "CMakeFiles/socet_util.dir/bitvector.cpp.o"
  "CMakeFiles/socet_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/socet_util.dir/table.cpp.o"
  "CMakeFiles/socet_util.dir/table.cpp.o.d"
  "libsocet_util.a"
  "libsocet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
