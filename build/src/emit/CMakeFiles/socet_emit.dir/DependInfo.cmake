
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emit/dot.cpp" "src/emit/CMakeFiles/socet_emit.dir/dot.cpp.o" "gcc" "src/emit/CMakeFiles/socet_emit.dir/dot.cpp.o.d"
  "/root/repo/src/emit/verilog.cpp" "src/emit/CMakeFiles/socet_emit.dir/verilog.cpp.o" "gcc" "src/emit/CMakeFiles/socet_emit.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transparency/CMakeFiles/socet_transparency.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/socet_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/socet_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/socet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hscan/CMakeFiles/socet_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/socet_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
