file(REMOVE_RECURSE
  "libsocet_emit.a"
)
