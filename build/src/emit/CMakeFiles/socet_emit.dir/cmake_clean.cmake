file(REMOVE_RECURSE
  "CMakeFiles/socet_emit.dir/dot.cpp.o"
  "CMakeFiles/socet_emit.dir/dot.cpp.o.d"
  "CMakeFiles/socet_emit.dir/verilog.cpp.o"
  "CMakeFiles/socet_emit.dir/verilog.cpp.o.d"
  "libsocet_emit.a"
  "libsocet_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
