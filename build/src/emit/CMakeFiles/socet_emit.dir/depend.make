# Empty dependencies file for socet_emit.
# This may be replaced when dependencies are built.
