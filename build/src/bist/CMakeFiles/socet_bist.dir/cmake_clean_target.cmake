file(REMOVE_RECURSE
  "libsocet_bist.a"
)
