
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/march.cpp" "src/bist/CMakeFiles/socet_bist.dir/march.cpp.o" "gcc" "src/bist/CMakeFiles/socet_bist.dir/march.cpp.o.d"
  "/root/repo/src/bist/memory.cpp" "src/bist/CMakeFiles/socet_bist.dir/memory.cpp.o" "gcc" "src/bist/CMakeFiles/socet_bist.dir/memory.cpp.o.d"
  "/root/repo/src/bist/signature.cpp" "src/bist/CMakeFiles/socet_bist.dir/signature.cpp.o" "gcc" "src/bist/CMakeFiles/socet_bist.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
