# Empty compiler generated dependencies file for socet_bist.
# This may be replaced when dependencies are built.
