file(REMOVE_RECURSE
  "CMakeFiles/socet_bist.dir/march.cpp.o"
  "CMakeFiles/socet_bist.dir/march.cpp.o.d"
  "CMakeFiles/socet_bist.dir/memory.cpp.o"
  "CMakeFiles/socet_bist.dir/memory.cpp.o.d"
  "CMakeFiles/socet_bist.dir/signature.cpp.o"
  "CMakeFiles/socet_bist.dir/signature.cpp.o.d"
  "libsocet_bist.a"
  "libsocet_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
