# Empty dependencies file for socet_synth.
# This may be replaced when dependencies are built.
