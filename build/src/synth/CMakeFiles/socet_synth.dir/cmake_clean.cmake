file(REMOVE_RECURSE
  "CMakeFiles/socet_synth.dir/elaborate.cpp.o"
  "CMakeFiles/socet_synth.dir/elaborate.cpp.o.d"
  "libsocet_synth.a"
  "libsocet_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
