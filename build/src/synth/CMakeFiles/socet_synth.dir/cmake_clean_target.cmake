file(REMOVE_RECURSE
  "libsocet_synth.a"
)
