file(REMOVE_RECURSE
  "libsocet_systems.a"
)
