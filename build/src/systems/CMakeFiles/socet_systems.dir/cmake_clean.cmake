file(REMOVE_RECURSE
  "CMakeFiles/socet_systems.dir/barcode.cpp.o"
  "CMakeFiles/socet_systems.dir/barcode.cpp.o.d"
  "CMakeFiles/socet_systems.dir/synthetic.cpp.o"
  "CMakeFiles/socet_systems.dir/synthetic.cpp.o.d"
  "CMakeFiles/socet_systems.dir/system2.cpp.o"
  "CMakeFiles/socet_systems.dir/system2.cpp.o.d"
  "libsocet_systems.a"
  "libsocet_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
