# Empty dependencies file for socet_systems.
# This may be replaced when dependencies are built.
