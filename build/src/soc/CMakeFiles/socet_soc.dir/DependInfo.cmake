
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/ccg.cpp" "src/soc/CMakeFiles/socet_soc.dir/ccg.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/ccg.cpp.o.d"
  "/root/repo/src/soc/controller.cpp" "src/soc/CMakeFiles/socet_soc.dir/controller.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/controller.cpp.o.d"
  "/root/repo/src/soc/flatten.cpp" "src/soc/CMakeFiles/socet_soc.dir/flatten.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/flatten.cpp.o.d"
  "/root/repo/src/soc/parallel.cpp" "src/soc/CMakeFiles/socet_soc.dir/parallel.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/parallel.cpp.o.d"
  "/root/repo/src/soc/schedule.cpp" "src/soc/CMakeFiles/socet_soc.dir/schedule.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/schedule.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/soc/CMakeFiles/socet_soc.dir/soc.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/soc.cpp.o.d"
  "/root/repo/src/soc/testprogram.cpp" "src/soc/CMakeFiles/socet_soc.dir/testprogram.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/testprogram.cpp.o.d"
  "/root/repo/src/soc/validate.cpp" "src/soc/CMakeFiles/socet_soc.dir/validate.cpp.o" "gcc" "src/soc/CMakeFiles/socet_soc.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/socet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transparency/CMakeFiles/socet_transparency.dir/DependInfo.cmake"
  "/root/repo/build/src/hscan/CMakeFiles/socet_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/socet_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
