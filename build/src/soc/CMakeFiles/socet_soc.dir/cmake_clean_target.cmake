file(REMOVE_RECURSE
  "libsocet_soc.a"
)
