# Empty compiler generated dependencies file for socet_soc.
# This may be replaced when dependencies are built.
