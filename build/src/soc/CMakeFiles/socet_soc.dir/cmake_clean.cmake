file(REMOVE_RECURSE
  "CMakeFiles/socet_soc.dir/ccg.cpp.o"
  "CMakeFiles/socet_soc.dir/ccg.cpp.o.d"
  "CMakeFiles/socet_soc.dir/controller.cpp.o"
  "CMakeFiles/socet_soc.dir/controller.cpp.o.d"
  "CMakeFiles/socet_soc.dir/flatten.cpp.o"
  "CMakeFiles/socet_soc.dir/flatten.cpp.o.d"
  "CMakeFiles/socet_soc.dir/parallel.cpp.o"
  "CMakeFiles/socet_soc.dir/parallel.cpp.o.d"
  "CMakeFiles/socet_soc.dir/schedule.cpp.o"
  "CMakeFiles/socet_soc.dir/schedule.cpp.o.d"
  "CMakeFiles/socet_soc.dir/soc.cpp.o"
  "CMakeFiles/socet_soc.dir/soc.cpp.o.d"
  "CMakeFiles/socet_soc.dir/testprogram.cpp.o"
  "CMakeFiles/socet_soc.dir/testprogram.cpp.o.d"
  "CMakeFiles/socet_soc.dir/validate.cpp.o"
  "CMakeFiles/socet_soc.dir/validate.cpp.o.d"
  "libsocet_soc.a"
  "libsocet_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socet_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
