# Empty dependencies file for socet_soc.
# This may be replaced when dependencies are built.
