file(REMOVE_RECURSE
  "CMakeFiles/barcode_walkthrough.dir/barcode_walkthrough.cpp.o"
  "CMakeFiles/barcode_walkthrough.dir/barcode_walkthrough.cpp.o.d"
  "barcode_walkthrough"
  "barcode_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barcode_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
