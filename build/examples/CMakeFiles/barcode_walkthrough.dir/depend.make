# Empty dependencies file for barcode_walkthrough.
# This may be replaced when dependencies are built.
