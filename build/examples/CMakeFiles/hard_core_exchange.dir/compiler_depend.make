# Empty compiler generated dependencies file for hard_core_exchange.
# This may be replaced when dependencies are built.
