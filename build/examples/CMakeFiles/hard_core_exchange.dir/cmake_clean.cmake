file(REMOVE_RECURSE
  "CMakeFiles/hard_core_exchange.dir/hard_core_exchange.cpp.o"
  "CMakeFiles/hard_core_exchange.dir/hard_core_exchange.cpp.o.d"
  "hard_core_exchange"
  "hard_core_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_core_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
