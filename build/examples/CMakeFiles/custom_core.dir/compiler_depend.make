# Empty compiler generated dependencies file for custom_core.
# This may be replaced when dependencies are built.
