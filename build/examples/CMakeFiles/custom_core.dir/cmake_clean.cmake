file(REMOVE_RECURSE
  "CMakeFiles/custom_core.dir/custom_core.cpp.o"
  "CMakeFiles/custom_core.dir/custom_core.cpp.o.d"
  "custom_core"
  "custom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
