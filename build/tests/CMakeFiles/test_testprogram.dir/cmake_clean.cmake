file(REMOVE_RECURSE
  "CMakeFiles/test_testprogram.dir/testprogram_test.cpp.o"
  "CMakeFiles/test_testprogram.dir/testprogram_test.cpp.o.d"
  "test_testprogram"
  "test_testprogram.pdb"
  "test_testprogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
