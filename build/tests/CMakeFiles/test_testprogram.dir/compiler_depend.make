# Empty compiler generated dependencies file for test_testprogram.
# This may be replaced when dependencies are built.
