# Empty dependencies file for test_hscan.
# This may be replaced when dependencies are built.
