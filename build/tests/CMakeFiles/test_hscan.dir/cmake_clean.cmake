file(REMOVE_RECURSE
  "CMakeFiles/test_hscan.dir/hscan_test.cpp.o"
  "CMakeFiles/test_hscan.dir/hscan_test.cpp.o.d"
  "test_hscan"
  "test_hscan.pdb"
  "test_hscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
