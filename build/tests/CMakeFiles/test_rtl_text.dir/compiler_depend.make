# Empty compiler generated dependencies file for test_rtl_text.
# This may be replaced when dependencies are built.
