file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_text.dir/rtl_text_test.cpp.o"
  "CMakeFiles/test_rtl_text.dir/rtl_text_test.cpp.o.d"
  "test_rtl_text"
  "test_rtl_text.pdb"
  "test_rtl_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
