# Empty dependencies file for test_sequential_atpg.
# This may be replaced when dependencies are built.
