file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_atpg.dir/sequential_atpg_test.cpp.o"
  "CMakeFiles/test_sequential_atpg.dir/sequential_atpg_test.cpp.o.d"
  "test_sequential_atpg"
  "test_sequential_atpg.pdb"
  "test_sequential_atpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
